#include "durable/result_codec.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <vector>

namespace pi2::durable {

namespace {

// v2: fluid-tier stats (arrival/served/dropped/backlog/ticks) and the
// per-flow is_fluid flag joined the payload; v1 journals decode as corrupt
// and their points are re-simulated rather than silently misread.
// v3: DualPI2's per-band (L/C queue) counter slices, whole-run and window.
// v4: per-link result slices (multi-bottleneck topologies) appended after
// the violations section. v3 payloads stay readable — the links section is
// strictly trailing, so a v3 record decodes with `links` empty, which is
// exactly what a v3-era (single-link) run would have carried.
// v5: the trailing ResilienceReport section (recovery scoring of the
// primary link's fault windows). v4 and v3 payloads still decode — the new
// section is strictly trailing, so older records decode with the default
// (unanalyzed) report, which is what a fault-free run carries anyway.
constexpr const char* kMagic = "pi2-result-v5";
constexpr const char* kMagicV4 = "pi2-result-v4";
constexpr const char* kMagicV3 = "pi2-result-v3";

void put_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, " %" PRIx64, v);
  out += buf;
}

void put_i64(std::string& out, std::int64_t v) {
  // Two's-complement via u64 keeps negatives (none expected, but exact).
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  char buf[24];
  std::snprintf(buf, sizeof buf, " %016" PRIx64, bits);
  out += buf;
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  if (s.empty()) return;
  out += ' ';
  char buf[4];
  for (const char c : s) {
    std::snprintf(buf, sizeof buf, "%02x", static_cast<unsigned char>(c));
    out += buf;
  }
}

void put_series(std::string& out, const stats::TimeSeries& series) {
  put_u64(out, series.size());
  for (const auto& point : series.points()) {
    put_i64(out, point.t.count());
    put_double(out, point.value);
  }
}

/// Full reservoir snapshot (classic/scalable probability samplers).
void put_sampler(std::string& out, const stats::PercentileSampler& sampler) {
  put_i64(out, sampler.count());
  put_double(out, sampler.sum());
  put_u64(out, sampler.retained().size());
  for (const double x : sampler.retained()) put_double(out, x);
}

/// count+sum only (the per-packet sojourn sampler; see header).
void put_sampler_lite(std::string& out, const stats::PercentileSampler& sampler) {
  put_i64(out, sampler.count());
  put_double(out, sampler.sum());
}

class Reader {
 public:
  explicit Reader(const std::string& payload) : in_(payload) {}

  bool u64(std::uint64_t& v) {
    std::string tok;
    if (!(in_ >> tok)) return fail();
    v = 0;
    if (tok.empty() || tok.size() > 16) return fail();
    for (const char c : tok) {
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
      else return fail();
    }
    return true;
  }

  bool i64(std::int64_t& v) {
    std::uint64_t raw = 0;
    if (!u64(raw)) return false;
    v = static_cast<std::int64_t>(raw);
    return true;
  }

  bool real(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }

  bool str(std::string& out) {
    std::uint64_t size = 0;
    if (!u64(size)) return false;
    if (size > (1u << 20)) return fail();  // sanity bound on string fields
    out.clear();
    if (size == 0) return true;
    std::string hex;
    if (!(in_ >> hex) || hex.size() != size * 2) return fail();
    out.reserve(size);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
      unsigned byte = 0;
      for (int k = 0; k < 2; ++k) {
        const char c = hex[i + static_cast<std::size_t>(k)];
        byte <<= 4;
        if (c >= '0' && c <= '9') byte |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') byte |= static_cast<unsigned>(c - 'a' + 10);
        else return fail();
      }
      out += static_cast<char>(byte);
    }
    return true;
  }

  bool series(stats::TimeSeries& out) {
    std::uint64_t size = 0;
    if (!u64(size)) return false;
    for (std::uint64_t i = 0; i < size; ++i) {
      std::int64_t t_ns = 0;
      double value = 0.0;
      if (!i64(t_ns) || !real(value)) return false;
      out.add(pi2::sim::Time{t_ns}, value);
    }
    return true;
  }

  bool sampler(stats::PercentileSampler& out) {
    std::int64_t seen = 0;
    double sum = 0.0;
    std::uint64_t retained = 0;
    if (!i64(seen) || !real(sum) || !u64(retained)) return false;
    std::vector<double> samples;
    samples.reserve(retained);
    for (std::uint64_t i = 0; i < retained; ++i) {
      double x = 0.0;
      if (!real(x)) return false;
      samples.push_back(x);
    }
    out.restore(seen, sum, std::move(samples));
    return true;
  }

  bool sampler_lite(stats::PercentileSampler& out) {
    std::int64_t seen = 0;
    double sum = 0.0;
    if (!i64(seen) || !real(sum)) return false;
    out.restore(seen, sum, {});
    return true;
  }

  [[nodiscard]] bool failed() const { return failed_; }

  /// True once every token has been consumed. Trailing bytes mean the payload
  /// is not what encode_result() produced (e.g. two records glued together).
  [[nodiscard]] bool exhausted() {
    std::string extra;
    return !(in_ >> extra);
  }

 private:
  bool fail() {
    failed_ = true;
    return false;
  }

  std::istringstream in_;
  bool failed_ = false;
};

}  // namespace

std::string encode_result(const scenario::RunResult& result) {
  std::string out = kMagic;
  put_u64(out, result.events_executed);
  put_u64(out, result.clamped_events);
  put_u64(out, result.invariant_checks);
  put_u64(out, result.guard_events);

  const auto put_counters = [&out](const net::BottleneckLink::Counters& c) {
    put_i64(out, c.enqueued);
    put_i64(out, c.forwarded);
    put_i64(out, c.aqm_dropped);
    put_i64(out, c.tail_dropped);
    put_i64(out, c.marked);
    put_i64(out, c.fault_dropped);
    put_i64(out, c.dequeue_dropped);
  };
  put_counters(result.counters);
  put_counters(result.window_counters);

  const auto put_band = [&out](const net::BottleneckLink::BandCounters& b) {
    put_i64(out, b.enqueued);
    put_i64(out, b.forwarded);
    put_i64(out, b.marked);
    put_i64(out, b.aqm_dropped);
    put_i64(out, b.tail_dropped);
    put_i64(out, b.dequeue_dropped);
  };
  put_band(result.band_l);
  put_band(result.band_c);
  put_band(result.window_band_l);
  put_band(result.window_band_c);

  put_i64(out, result.fault_counters.dropped);
  put_i64(out, result.fault_counters.bleached);
  put_i64(out, result.fault_counters.reordered);
  put_i64(out, result.fault_counters.rate_changes);
  put_i64(out, result.fault_counters.rtt_changes);

  put_double(out, result.fluid.arrival_bytes);
  put_double(out, result.fluid.served_bytes);
  put_double(out, result.fluid.dropped_bytes);
  put_double(out, result.fluid.final_backlog_bytes);
  put_u64(out, result.fluid.ticks);

  put_double(out, result.mean_qdelay_ms);
  put_double(out, result.p99_qdelay_ms);
  put_double(out, result.utilization);

  put_series(out, result.qdelay_ms_series);
  put_series(out, result.classic_prob_series);
  put_series(out, result.total_throughput_series);
  put_series(out, result.utilization_series);

  put_sampler(out, result.classic_prob_samples);
  put_sampler(out, result.scalable_prob_samples);
  put_sampler_lite(out, result.qdelay_ms_packets);

  put_u64(out, result.flows.size());
  for (const auto& flow : result.flows) {
    put_u64(out, static_cast<std::uint64_t>(flow.cc));
    put_u64(out, flow.is_udp ? 1 : 0);
    put_u64(out, flow.is_fluid ? 1 : 0);
    put_double(out, flow.count);
    put_double(out, flow.goodput_mbps);
    put_i64(out, flow.retransmits);
    put_i64(out, flow.timeouts);
  }

  put_u64(out, result.violations.size());
  for (const auto& violation : result.violations) {
    put_i64(out, violation.at.count());
    put_string(out, violation.check);
    put_string(out, violation.detail);
  }

  put_u64(out, result.links.size());
  for (const auto& link : result.links) {
    put_string(out, link.name);
    put_double(out, link.mean_qdelay_ms);
    put_double(out, link.p99_qdelay_ms);
    put_double(out, link.utilization);
    put_counters(link.counters);
    put_counters(link.window_counters);
    put_i64(out, link.fault_counters.dropped);
    put_i64(out, link.fault_counters.bleached);
    put_i64(out, link.fault_counters.reordered);
    put_i64(out, link.fault_counters.rate_changes);
    put_i64(out, link.fault_counters.rtt_changes);
    put_u64(out, link.guard_events);
    put_i64(out, link.final_backlog_packets);
  }

  const stats::ResilienceReport& rr = result.resilience;
  put_u64(out, rr.analyzed ? 1 : 0);
  put_u64(out, rr.windows);
  put_u64(out, rr.recovered_windows);
  put_double(out, rr.worst_recovery_s);
  put_double(out, rr.mean_recovery_s);
  put_double(out, rr.peak_qdelay_ms);
  put_double(out, rr.pre_fault_mean_qdelay_ms);
  put_double(out, rr.post_fault_mean_qdelay_ms);
  put_double(out, rr.post_fault_delta_ms);
  put_u64(out, rr.violations_in_window);
  put_u64(out, rr.violations_outside);
  put_u64(out, rr.recovery_s.size());
  for (const double r : rr.recovery_s) put_double(out, r);
  return out;
}

Status decode_result(const std::string& payload, scenario::RunResult& result) {
  std::istringstream magic_in(payload);
  std::string magic;
  if (!(magic_in >> magic) ||
      (magic != kMagic && magic != kMagicV4 && magic != kMagicV3)) {
    return Status::corrupt("result payload: bad magic");
  }
  const bool has_links = magic == kMagic || magic == kMagicV4;
  const bool has_resilience = magic == kMagic;
  Reader reader(payload.substr(magic.size()));
  scenario::RunResult out;

  bool ok = reader.u64(out.events_executed) && reader.u64(out.clamped_events) &&
            reader.u64(out.invariant_checks) && reader.u64(out.guard_events);

  const auto read_counters = [&reader](net::BottleneckLink::Counters& c) {
    return reader.i64(c.enqueued) && reader.i64(c.forwarded) &&
           reader.i64(c.aqm_dropped) && reader.i64(c.tail_dropped) &&
           reader.i64(c.marked) && reader.i64(c.fault_dropped) &&
           reader.i64(c.dequeue_dropped);
  };
  ok = ok && read_counters(out.counters) && read_counters(out.window_counters);

  const auto read_band = [&reader](net::BottleneckLink::BandCounters& b) {
    return reader.i64(b.enqueued) && reader.i64(b.forwarded) &&
           reader.i64(b.marked) && reader.i64(b.aqm_dropped) &&
           reader.i64(b.tail_dropped) && reader.i64(b.dequeue_dropped);
  };
  ok = ok && read_band(out.band_l) && read_band(out.band_c) &&
       read_band(out.window_band_l) && read_band(out.window_band_c);

  ok = ok && reader.i64(out.fault_counters.dropped) &&
       reader.i64(out.fault_counters.bleached) &&
       reader.i64(out.fault_counters.reordered) &&
       reader.i64(out.fault_counters.rate_changes) &&
       reader.i64(out.fault_counters.rtt_changes);

  ok = ok && reader.real(out.fluid.arrival_bytes) &&
       reader.real(out.fluid.served_bytes) &&
       reader.real(out.fluid.dropped_bytes) &&
       reader.real(out.fluid.final_backlog_bytes) &&
       reader.u64(out.fluid.ticks);

  ok = ok && reader.real(out.mean_qdelay_ms) && reader.real(out.p99_qdelay_ms) &&
       reader.real(out.utilization);

  ok = ok && reader.series(out.qdelay_ms_series) &&
       reader.series(out.classic_prob_series) &&
       reader.series(out.total_throughput_series) &&
       reader.series(out.utilization_series);

  ok = ok && reader.sampler(out.classic_prob_samples) &&
       reader.sampler(out.scalable_prob_samples) &&
       reader.sampler_lite(out.qdelay_ms_packets);

  std::uint64_t flow_count = 0;
  ok = ok && reader.u64(flow_count) && flow_count <= (1u << 20);
  for (std::uint64_t i = 0; ok && i < flow_count; ++i) {
    scenario::FlowResult flow;
    std::uint64_t cc = 0;
    std::uint64_t is_udp = 0;
    std::uint64_t is_fluid = 0;
    ok = reader.u64(cc) && reader.u64(is_udp) && reader.u64(is_fluid) &&
         reader.real(flow.count) && reader.real(flow.goodput_mbps) &&
         reader.i64(flow.retransmits) && reader.i64(flow.timeouts);
    if (ok) {
      flow.cc = static_cast<tcp::CcType>(cc);
      flow.is_udp = is_udp != 0;
      flow.is_fluid = is_fluid != 0;
      out.flows.push_back(flow);
    }
  }

  std::uint64_t violation_count = 0;
  ok = ok && reader.u64(violation_count) && violation_count <= (1u << 20);
  for (std::uint64_t i = 0; ok && i < violation_count; ++i) {
    faults::InvariantViolation violation;
    std::int64_t at_ns = 0;
    ok = reader.i64(at_ns) && reader.str(violation.check) &&
         reader.str(violation.detail);
    if (ok) {
      violation.at = pi2::sim::Time{at_ns};
      out.violations.push_back(std::move(violation));
    }
  }

  if (has_links) {
    std::uint64_t link_count = 0;
    ok = ok && reader.u64(link_count) && link_count <= (1u << 20);
    for (std::uint64_t i = 0; ok && i < link_count; ++i) {
      scenario::LinkSlice link;
      ok = reader.str(link.name) && reader.real(link.mean_qdelay_ms) &&
           reader.real(link.p99_qdelay_ms) && reader.real(link.utilization) &&
           read_counters(link.counters) && read_counters(link.window_counters) &&
           reader.i64(link.fault_counters.dropped) &&
           reader.i64(link.fault_counters.bleached) &&
           reader.i64(link.fault_counters.reordered) &&
           reader.i64(link.fault_counters.rate_changes) &&
           reader.i64(link.fault_counters.rtt_changes) &&
           reader.u64(link.guard_events) &&
           reader.i64(link.final_backlog_packets);
      if (ok) out.links.push_back(std::move(link));
    }
  }

  if (has_resilience) {
    stats::ResilienceReport& rr = out.resilience;
    std::uint64_t analyzed = 0;
    ok = ok && reader.u64(analyzed) && reader.u64(rr.windows) &&
         reader.u64(rr.recovered_windows) && reader.real(rr.worst_recovery_s) &&
         reader.real(rr.mean_recovery_s) && reader.real(rr.peak_qdelay_ms) &&
         reader.real(rr.pre_fault_mean_qdelay_ms) &&
         reader.real(rr.post_fault_mean_qdelay_ms) &&
         reader.real(rr.post_fault_delta_ms) &&
         reader.u64(rr.violations_in_window) &&
         reader.u64(rr.violations_outside);
    rr.analyzed = analyzed != 0;
    std::uint64_t recovery_count = 0;
    ok = ok && reader.u64(recovery_count) && recovery_count <= (1u << 20);
    for (std::uint64_t i = 0; ok && i < recovery_count; ++i) {
      double r = 0.0;
      ok = reader.real(r);
      if (ok) rr.recovery_s.push_back(r);
    }
  }

  if (!ok || reader.failed()) {
    return Status::corrupt("result payload: truncated or malformed");
  }
  if (!reader.exhausted()) {
    return Status::corrupt("result payload: trailing bytes");
  }
  result = std::move(out);
  return {};
}

}  // namespace pi2::durable
