// RunResult <-> journal payload codec.
//
// The resume path only works if a replayed point is indistinguishable from a
// freshly computed one: every figure table, sweep --json record and oracle
// digest derived from a journaled RunResult must be byte-identical to what
// the original run produced. So the codec is exact, not pretty: doubles are
// serialized as their 64-bit IEEE bit patterns in hex (no decimal rounding),
// integers as hex, strings as hex-encoded bytes. The payload is a single
// line of space-separated tokens, safe to embed in a journal record.
//
// Deliberate exception: RunResult::qdelay_ms_packets retains up to 2^21
// per-packet samples — megabytes per point. Only its count and sum are
// journaled (count()/mean() survive a resume; quantiles do not). Nothing
// downstream of run_sweep() reads its quantiles: Figure 14, the only
// consumer, runs its two points directly without the sweep engine. The
// digest in check/oracles.cpp skips it for the same reason.
#pragma once

#include <string>

#include "durable/status.hpp"
#include "scenario/dumbbell.hpp"

namespace pi2::durable {

/// Serializes every field of `result` (see header note on qdelay_ms_packets)
/// into a one-line payload for JournalWriter::append_point.
[[nodiscard]] std::string encode_result(const scenario::RunResult& result);

/// Rebuilds a RunResult from encode_result() output. Returns kCorrupt on any
/// structural mismatch; `result` is only valid when the status is ok.
[[nodiscard]] Status decode_result(const std::string& payload,
                                   scenario::RunResult& result);

}  // namespace pi2::durable
