// ShutdownController: turn SIGINT/SIGTERM into a safe-boundary stop.
//
// A sweep killed with ^C used to die wherever the instruction pointer
// happened to be — half-written JSON, a telemetry directory missing its
// manifest, a journal without its final record. The controller installs
// async-signal-safe handlers that only set an atomic flag; the simulator
// polls that flag every few thousand events and the scheduler stops
// claiming new tasks, so the process unwinds at a well-defined boundary:
// samplers take their final sample, artifacts commit (marked interrupted),
// the journal gets an `interrupted` record, and the process exits with
// kExitInterrupted (75, EX_TEMPFAIL) so scripts can distinguish
// "interrupted but resumable" from success (0) and real failure (1).
//
// A second signal skips the graceful path entirely (_exit(128+sig)) so a
// wedged run can always be killed from the keyboard.
#pragma once

#include <atomic>

namespace pi2::durable {

class ShutdownController {
 public:
  /// Exit code for an interrupted-but-resumable run (EX_TEMPFAIL).
  static constexpr int kExitInterrupted = 75;

  /// Installs SIGINT/SIGTERM handlers (idempotent). Call once near the top
  /// of main, before spawning workers.
  static void install();

  /// True once a shutdown signal has been received.
  [[nodiscard]] static bool requested() {
    return flag_.load(std::memory_order_acquire);
  }

  /// The signal number that triggered shutdown (0 if none).
  [[nodiscard]] static int signal_number() {
    return signal_.load(std::memory_order_acquire);
  }

  /// Pointer suitable for DumbbellConfig::stop — the simulator polls it.
  [[nodiscard]] static const std::atomic<bool>* flag() { return &flag_; }

  /// Programmatic trigger (tests and in-process cancellation).
  static void request(int sig = 0) {
    signal_.store(sig, std::memory_order_release);
    flag_.store(true, std::memory_order_release);
  }

  /// Clears the flag (tests only; handlers stay installed).
  static void reset() {
    flag_.store(false, std::memory_order_release);
    signal_.store(0, std::memory_order_release);
  }

 private:
  static std::atomic<bool> flag_;
  static std::atomic<int> signal_;
  static std::atomic<bool> installed_;
};

}  // namespace pi2::durable
