#include "durable/status.hpp"

#include <cstring>

namespace pi2::durable {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kCorrupt: return "corrupt";
    case StatusCode::kInterrupted: return "interrupted";
    case StatusCode::kInvalid: return "invalid";
    case StatusCode::kForeignCampaign: return "foreign-campaign";
    case StatusCode::kStaleDigest: return "stale-digest";
    case StatusCode::kShardOverlap: return "shard-overlap";
    case StatusCode::kShardGap: return "shard-gap";
    case StatusCode::kDuplicatePoint: return "duplicate-point";
  }
  return "?";
}

Status Status::io_error(const std::string& path, int errno_value,
                        const std::string& what) {
  std::string message = "io-error: " + what + ": " + path;
  if (errno_value != 0) {
    message += ": ";
    message += std::strerror(errno_value);
    message += " (errno " + std::to_string(errno_value) + ")";
  }
  return Status{StatusCode::kIoError, std::move(message)};
}

Status Status::corrupt(const std::string& what) {
  return Status{StatusCode::kCorrupt, "corrupt: " + what};
}

Status Status::interrupted(const std::string& what) {
  return Status{StatusCode::kInterrupted, "interrupted: " + what};
}

Status Status::invalid(const std::string& what) {
  return Status{StatusCode::kInvalid, "invalid: " + what};
}

Status Status::foreign_campaign(const std::string& what) {
  return Status{StatusCode::kForeignCampaign, "foreign-campaign: " + what};
}

Status Status::stale_digest(const std::string& what) {
  return Status{StatusCode::kStaleDigest, "stale-digest: " + what};
}

Status Status::shard_overlap(const std::string& what) {
  return Status{StatusCode::kShardOverlap, "shard-overlap: " + what};
}

Status Status::shard_gap(const std::string& what) {
  return Status{StatusCode::kShardGap, "shard-gap: " + what};
}

Status Status::duplicate_point(const std::string& what) {
  return Status{StatusCode::kDuplicatePoint, "duplicate-point: " + what};
}

}  // namespace pi2::durable
