// AtomicFile: crash-safe artifact writes (tmp file + fsync + rename).
//
// Every artifact this repo writes — telemetry JSONL/CSV/Prometheus streams,
// run manifests, sweep --json records, benchmark trajectories — must be
// either absent or complete on disk. A bare fopen(path, "w") violates that
// the moment a process dies mid-write: the reader later finds a torn file
// that parses halfway. AtomicFile writes to `<path>.tmp`, then on commit()
// flushes, fsyncs, closes, renames over the destination and fsyncs the
// containing directory (POSIX), so the destination name only ever points at
// complete bytes. A destructor without commit() aborts: the tmp file is
// removed and the destination untouched.
//
// Errors are never swallowed: every write is checked, and the first failure
// (with path + errno) is latched into status(). Once failed, subsequent
// writes are no-ops and commit() refuses to rename a half-written file.
//
// Fault injection (tests): set_faults() arms a process-wide budget of bytes
// after which writes fail with ENOSPC, plus open/commit failure switches —
// the "disk full" and "unwritable directory" error paths are unit-testable
// without actually filling a disk.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "durable/status.hpp"

namespace pi2::durable {

class AtomicFile {
 public:
  /// Opens `<path>.tmp` for writing. Failure is latched in status(), not
  /// thrown, so callers can treat a broken writer as a sink and surface the
  /// error once at commit time.
  explicit AtomicFile(std::string path);
  ~AtomicFile();
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  /// Appends `size` bytes. Returns false (and latches status) on failure.
  bool write(const void* data, std::size_t size);
  bool write(const std::string& data) { return write(data.data(), data.size()); }

  /// printf-style convenience over write(); formats into an internal buffer
  /// so the byte-counting fault hook sees every byte.
  bool printf(const char* format, ...) __attribute__((format(printf, 2, 3)));

  /// Flush + fsync + close + rename(tmp, path) + directory fsync. Idempotent:
  /// later calls return the first outcome. Refuses (and removes the tmp) if
  /// any prior write failed.
  Status commit();

  /// Drops the tmp file without touching the destination. Idempotent; the
  /// destructor calls it when commit() was never reached.
  void abort();

  /// True while writes are still landing (open succeeded, no error, not yet
  /// committed or aborted).
  [[nodiscard]] bool healthy() const {
    return file_ != nullptr && status_.ok();
  }
  /// True once commit() succeeded.
  [[nodiscard]] bool committed() const { return committed_; }
  /// First error observed (open, write, or commit), or ok.
  [[nodiscard]] const Status& status() const { return status_; }
  /// Destination path (the tmp path is `path() + ".tmp"`).
  [[nodiscard]] const std::string& path() const { return path_; }

  // --- test fault hook ------------------------------------------------------
  struct Faults {
    /// Fail every open attempt (unreachable device).
    bool fail_open = false;
    /// Process-wide byte budget; once this many bytes have been written
    /// across all AtomicFiles, further writes fail with ENOSPC (-1 = off).
    long long fail_write_after_bytes = -1;
    /// Fail the commit-time fsync/rename step.
    bool fail_commit = false;
  };
  /// Arms the process-wide fault plan (tests only; clear with clear_faults).
  static void set_faults(const Faults& faults);
  static void clear_faults();

 private:
  [[nodiscard]] std::string tmp_path() const { return path_ + ".tmp"; }

  std::string path_;
  std::FILE* file_ = nullptr;
  Status status_;
  bool committed_ = false;
  bool aborted_ = false;
};

/// One-shot convenience: atomically replaces `path` with `contents`.
[[nodiscard]] Status atomic_write_file(const std::string& path,
                                       const std::string& contents);

/// Consumes `size` bytes from the process-wide injected write budget;
/// returns true when the write must fail (simulated disk-full). Writers
/// outside AtomicFile (the journal appender) call this so every durable
/// write path honors one fault plan. Always false when faults are unarmed.
[[nodiscard]] bool inject_write_fault(std::size_t size);

}  // namespace pi2::durable
