// Status: the durable subsystem's small error taxonomy.
//
// Every filesystem-touching operation in src/durable (and the exporters
// built on it) reports a Status instead of dropping errors on the floor: an
// I/O failure carries the path and errno so a sweep that dies on a full
// disk at 3 a.m. says *which* artifact failed and *why*, not just `false`.
//
// Codes:
//   kOk           — success (the default-constructed Status).
//   kIoError      — open/write/fsync/rename/close failed; message carries
//                   path + strerror(errno).
//   kCorrupt      — parse-back failed a structural or digest check (torn
//                   journal record, truncated payload). The payload must be
//                   discarded and the work re-done, never silently reused.
//   kInterrupted  — the operation was cut short by a shutdown request.
//   kInvalid      — caller error (empty path, malformed argument).
//
// Shard-merge codes (the campaign layer's failure taxonomy — each
// adversarial merge condition maps to its own code so tests and operators
// can tell them apart from the exit alone):
//   kForeignCampaign — a journal from a *different* campaign (name mismatch,
//                      or no shard record at all) was offered to a merge.
//   kStaleDigest     — same campaign name, different digest: the spec was
//                      edited after the shard ran. Its points describe a
//                      grid that no longer exists; re-run the shard.
//   kShardOverlap    — two shard journals claim overlapping point ranges
//                      (or the same range twice).
//   kShardGap        — the declared ranges leave part of the campaign
//                      uncovered, or a shard's journal is missing points
//                      inside its own declared range (killed, not resumed).
//   kDuplicatePoint  — one point key appears twice with *different*
//                      payloads; byte-identical re-appends are tolerated.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace pi2::durable {

enum class StatusCode : unsigned char {
  kOk,
  kIoError,
  kCorrupt,
  kInterrupted,
  kInvalid,
  kForeignCampaign,
  kStaleDigest,
  kShardOverlap,
  kShardGap,
  kDuplicatePoint,
};

[[nodiscard]] const char* to_string(StatusCode code);

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// I/O failure on `path`; `errno_value` (0 = unknown) is rendered via
  /// strerror so the message is actionable as-is.
  [[nodiscard]] static Status io_error(const std::string& path, int errno_value,
                                       const std::string& what);
  [[nodiscard]] static Status corrupt(const std::string& what);
  [[nodiscard]] static Status interrupted(const std::string& what);
  [[nodiscard]] static Status invalid(const std::string& what);
  [[nodiscard]] static Status foreign_campaign(const std::string& what);
  [[nodiscard]] static Status stale_digest(const std::string& what);
  [[nodiscard]] static Status shard_overlap(const std::string& what);
  [[nodiscard]] static Status shard_gap(const std::string& what);
  [[nodiscard]] static Status duplicate_point(const std::string& what);

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  /// "" for kOk; "<code>: <detail>" otherwise.
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Keeps the first error: assigning onto a non-ok Status is a no-op, so
  /// chains of writes preserve the root cause.
  void update(const Status& next) {
    if (ok() && !next.ok()) *this = next;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Thrown when a run is cut short by a shutdown request at a safe boundary.
/// Callers that catch it must treat the work as *not done* (it is re-run on
/// resume) — partial results are never committed under this exception.
class InterruptedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace pi2::durable
