// pi2_sim_cli — a command-line front end to the experiment harness: run any
// dumbbell scenario without writing code, and optionally export the time
// series to CSV for plotting.
//
//   pi2_sim_cli --aqm pi2 --link 40 --rtt 10 --cubic 1 --dctcp 1
//               --duration 60 --csv run.csv
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/trace.hpp"
#include "scenario/dumbbell.hpp"
#include "stats/csv.hpp"
#include "telemetry/recorder.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --aqm NAME        fifo|pie|bare-pie|pi|pi2|coupled-pi2|red|codel|curvy-red|step"
      " (default pi2)\n"
      "  --link MBPS       bottleneck rate (default 10)\n"
      "  --rtt MS          base round-trip time (default 100)\n"
      "  --target MS       AQM delay target (default 20)\n"
      "  --reno N          number of Reno flows (default 0)\n"
      "  --cubic N         number of Cubic flows (default 0)\n"
      "  --ecn-cubic N     number of ECN-Cubic flows (default 0)\n"
      "  --dctcp N         number of DCTCP flows (default 0)\n"
      "  --scalable N      number of Scalable TCP flows (default 0)\n"
      "  --relentless N    number of Relentless TCP flows (default 0)\n"
      "  --udp-mbps X      add a UDP CBR flow of X Mb/s (repeatable)\n"
      "  --duration S      simulated seconds (default 60)\n"
      "  --warmup S        stats window start (default duration/3)\n"
      "  --k X             coupling factor for coupled-pi2 (default 2)\n"
      "  --seed N          RNG seed (default 1)\n"
      "  --csv PATH        write qdelay/throughput/prob series to CSV\n"
      "  --trace PATH      write the per-packet event trace to PATH (CSV)\n"
      "  --telemetry DIR   write telemetry artifacts (JSONL sample stream,\n"
      "                    Prometheus snapshot, run manifest) into DIR\n"
      "  --telemetry-interval S  telemetry sampling cadence (default 0.1 s)\n",
      argv0);
}

pi2::scenario::AqmType parse_aqm(const std::string& name) {
  using pi2::scenario::AqmType;
  for (const auto type :
       {AqmType::kFifo, AqmType::kPie, AqmType::kBarePie, AqmType::kPi,
        AqmType::kPi2, AqmType::kCoupledPi2, AqmType::kRed, AqmType::kCodel,
        AqmType::kCurvyRed, AqmType::kStep}) {
    if (name == pi2::scenario::to_string(type)) return type;
  }
  std::fprintf(stderr, "unknown AQM '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pi2;
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  double duration_s = 60.0;
  double warmup_s = -1.0;
  double rtt_ms = 100.0;
  std::string csv_path;
  std::string trace_path;
  std::string telemetry_dir;
  double telemetry_interval_s = 0.0;

  struct Count {
    tcp::CcType cc;
    int n = 0;
  };
  Count counts[6] = {{tcp::CcType::kReno},     {tcp::CcType::kCubic},
                     {tcp::CcType::kEcnCubic}, {tcp::CcType::kDctcp},
                     {tcp::CcType::kScalable}, {tcp::CcType::kRelentless}};
  std::vector<double> udp_mbps;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--aqm") {
      cfg.aqm.type = parse_aqm(next());
    } else if (arg == "--link") {
      cfg.link_rate_bps = std::atof(next()) * 1e6;
    } else if (arg == "--rtt") {
      rtt_ms = std::atof(next());
    } else if (arg == "--target") {
      cfg.aqm.target = sim::from_millis(std::atof(next()));
    } else if (arg == "--reno") {
      counts[0].n = std::atoi(next());
    } else if (arg == "--cubic") {
      counts[1].n = std::atoi(next());
    } else if (arg == "--ecn-cubic") {
      counts[2].n = std::atoi(next());
    } else if (arg == "--dctcp") {
      counts[3].n = std::atoi(next());
    } else if (arg == "--scalable") {
      counts[4].n = std::atoi(next());
    } else if (arg == "--relentless") {
      counts[5].n = std::atoi(next());
    } else if (arg == "--udp-mbps") {
      udp_mbps.push_back(std::atof(next()));
    } else if (arg == "--duration") {
      duration_s = std::atof(next());
    } else if (arg == "--warmup") {
      warmup_s = std::atof(next());
    } else if (arg == "--k") {
      cfg.aqm.coupling_k = std::atof(next());
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--telemetry") {
      telemetry_dir = next();
    } else if (arg == "--telemetry-interval") {
      telemetry_interval_s = std::atof(next());
    } else {
      usage(argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  int total_tcp = 0;
  for (const auto& c : counts) {
    if (c.n > 0) {
      scenario::TcpFlowSpec spec;
      spec.cc = c.cc;
      spec.count = c.n;
      spec.base_rtt = sim::from_millis(rtt_ms);
      cfg.tcp_flows.push_back(spec);
      total_tcp += c.n;
    }
  }
  if (total_tcp == 0 && udp_mbps.empty()) {
    counts[0].n = 2;  // default workload: 2 Reno flows
    scenario::TcpFlowSpec spec;
    spec.cc = tcp::CcType::kReno;
    spec.count = 2;
    spec.base_rtt = sim::from_millis(rtt_ms);
    cfg.tcp_flows.push_back(spec);
  }
  for (const double mbps : udp_mbps) {
    scenario::UdpFlowSpec udp;
    udp.rate_bps = mbps * 1e6;
    udp.base_rtt = sim::from_millis(rtt_ms);
    cfg.udp_flows.push_back(udp);
  }
  cfg.duration = sim::from_seconds(duration_s);
  cfg.stats_start = sim::from_seconds(warmup_s >= 0 ? warmup_s : duration_s / 3.0);

  net::PacketTrace trace;
  if (!trace_path.empty()) cfg.trace = &trace;
  std::unique_ptr<telemetry::Recorder> recorder;
  if (!telemetry_dir.empty()) {
    telemetry::RecorderConfig rc;
    rc.dir = telemetry_dir;
    rc.run_id = "cli";
    if (telemetry_interval_s > 0) {
      rc.interval = sim::from_seconds(telemetry_interval_s);
    }
    recorder = std::make_unique<telemetry::Recorder>(rc);
    cfg.recorder = recorder.get();
  }

  const auto r = scenario::run_dumbbell(cfg);

  std::printf("aqm=%s link=%.1fMbps rtt=%.0fms duration=%.0fs\n",
              std::string(scenario::to_string(cfg.aqm.type)).c_str(),
              cfg.link_rate_bps / 1e6, rtt_ms, duration_s);
  std::printf("queue delay [ms]: mean=%.2f p99=%.2f\n", r.mean_qdelay_ms,
              r.p99_qdelay_ms);
  std::printf("utilization: %.3f\n", r.utilization);
  std::printf("probability: classic=%.4f scalable=%.4f observed=%.4f\n",
              r.classic_prob_samples.mean(), r.scalable_prob_samples.mean(),
              r.observed_signal_rate());
  std::printf("drops: aqm=%lld tail=%lld marks=%lld\n",
              static_cast<long long>(r.counters.aqm_dropped),
              static_cast<long long>(r.counters.tail_dropped),
              static_cast<long long>(r.counters.marked));
  for (std::size_t i = 0; i < r.flows.size(); ++i) {
    const auto& f = r.flows[i];
    std::printf("flow %2zu %-10s %7.2f Mb/s  (rexmt %lld, rto %lld)\n", i,
                f.is_udp ? "udp" : std::string(tcp::to_string(f.cc)).c_str(),
                f.goodput_mbps, static_cast<long long>(f.retransmits),
                static_cast<long long>(f.timeouts));
  }

  bool ok = true;
  if (!trace_path.empty()) {
    const bool trace_ok = trace.write_csv(trace_path);
    std::printf("trace: %s %s (%zu records, %zu dropped)\n", trace_path.c_str(),
                trace_ok ? "written" : "FAILED", trace.records().size(),
                trace.dropped_records());
    ok = ok && trace_ok;
  }
  if (recorder != nullptr) {
    std::printf("telemetry: %s %s\n", recorder->manifest_path().c_str(),
                recorder->ok() ? "written" : "FAILED");
    ok = ok && recorder->ok();
  }
  if (!csv_path.empty()) {
    const bool csv_ok = stats::write_series_csv(
        csv_path, {"qdelay_ms", "throughput_mbps", "classic_prob"},
        {&r.qdelay_ms_series, &r.total_throughput_series, &r.classic_prob_series},
        sim::from_seconds(1.0), sim::kTimeZero, cfg.duration);
    std::printf("csv: %s %s\n", csv_path.c_str(), csv_ok ? "written" : "FAILED");
    ok = ok && csv_ok;
  }
  return ok ? 0 : 1;
}
