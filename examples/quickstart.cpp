// Quickstart: run five TCP Reno flows through a PI2-managed 10 Mb/s
// bottleneck and print what the AQM achieved.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "scenario/dumbbell.hpp"

int main() {
  using namespace pi2;

  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;                       // 10 Mb/s bottleneck
  cfg.duration = sim::from_seconds(60.0);         // simulate one minute
  cfg.stats_start = sim::from_seconds(20.0);      // measure after warm-up
  cfg.aqm.type = scenario::AqmType::kPi2;         // the paper's AQM
  cfg.aqm.target = sim::from_millis(20);          // 20 ms delay target
  cfg.aqm.ecn = false;                            // plain drop-based Reno

  scenario::TcpFlowSpec flows;
  flows.cc = tcp::CcType::kReno;
  flows.count = 5;
  flows.base_rtt = sim::from_millis(100);
  cfg.tcp_flows = {flows};

  const scenario::RunResult result = scenario::run_dumbbell(cfg);

  std::printf("PI2 @ 10 Mb/s, 5 Reno flows, RTT 100 ms\n");
  std::printf("  queue delay : mean %.1f ms, p99 %.1f ms (target 20 ms)\n",
              result.mean_qdelay_ms, result.p99_qdelay_ms);
  std::printf("  utilization : %.1f %%\n", result.utilization * 100.0);
  std::printf("  drop prob   : %.2f %% applied (p' = %.2f %% internal)\n",
              result.classic_prob_samples.mean() * 100.0,
              result.scalable_prob_samples.mean() * 100.0);
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    std::printf("  flow %zu      : %.2f Mb/s goodput\n", i,
                result.flows[i].goodput_mbps);
  }
  std::printf(
      "\nThe squared output (p = p'^2) is what lets PI2 use constant gains:\n"
      "swap AqmType::kPi2 for kPie or kPi above and compare.\n");
  return 0;
}
