// Where PI2 went next: the DualQ Coupled AQM (DualPI2, later RFC 9332).
// The single-queue coupled AQM of the paper gives rate fairness but forces
// Scalable traffic to share the Classic queue's 20 ms of delay; the DualQ
// splits the queues — same k = 2 coupling, but DCTCP now rides a
// sub-millisecond queue while Cubic keeps its own 20 ms-target queue.
//
// This example runs the identical Cubic+DCTCP mix through both arrangements
// and prints the delay each flow's packets actually experienced.
#include <cstdio>
#include <memory>

#include "core/dualpi2.hpp"
#include "scenario/dumbbell.hpp"
#include "stats/percentile.hpp"
#include "tcp/endpoint.hpp"

namespace {

using namespace pi2;

void run_dualq(double link_mbps, double rtt_ms) {
  sim::Simulator simulator{1};
  core::DualPi2Link::Params params;
  params.rate_bps = link_mbps * 1e6;
  core::DualPi2Link link{simulator, params};

  stats::PercentileSampler l_ms;
  stats::PercentileSampler c_ms;
  link.set_departure_probe(
      [&](const net::Packet&, sim::Duration sojourn, bool from_l) {
        if (simulator.now() > sim::from_seconds(20)) {
          (from_l ? l_ms : c_ms).add(sim::to_millis(sojourn));
        }
      });

  struct Flow {
    std::unique_ptr<tcp::TcpSender> sender;
    std::unique_ptr<tcp::TcpReceiver> receiver;
    std::int64_t bytes = 0;
  };
  Flow flows[2];
  const tcp::CcType ccs[2] = {tcp::CcType::kCubic, tcp::CcType::kDctcp};
  for (int i = 0; i < 2; ++i) {
    tcp::TcpSender::Config sc;
    sc.flow = i;
    sc.max_cwnd = 700;
    flows[i].sender = std::make_unique<tcp::TcpSender>(
        simulator, sc, tcp::make_congestion_control(ccs[i]));
    flows[i].receiver = std::make_unique<tcp::TcpReceiver>(simulator, i);
    Flow* flow = &flows[i];
    flow->sender->set_output([&link](net::Packet p) { link.send(p); });
    flow->receiver->set_delivery_probe([flow, &simulator](const net::Packet& p) {
      if (simulator.now() > sim::from_seconds(20)) flow->bytes += p.size;
    });
    flow->receiver->set_ack_path([&simulator, flow, rtt_ms](net::Packet a) {
      simulator.after(sim::from_millis(rtt_ms / 2),
                      [flow, a] { flow->sender->on_ack(a); });
    });
    flow->sender->start();
  }
  link.set_sink([&](net::Packet p) {
    Flow* flow = &flows[p.flow];
    simulator.after(sim::from_millis(rtt_ms / 2),
                    [flow, p] { flow->receiver->on_data(p); });
  });
  simulator.run_until(sim::from_seconds(80));

  const double span = 60.0;
  std::printf("DualPI2 (two queues):\n");
  std::printf("  dctcp queue delay: mean %.2f ms, p99 %.2f ms\n", l_ms.mean(),
              l_ms.p99());
  std::printf("  cubic queue delay: mean %.2f ms, p99 %.2f ms\n", c_ms.mean(),
              c_ms.p99());
  std::printf("  rates: cubic %.1f, dctcp %.1f Mb/s\n",
              static_cast<double>(flows[0].bytes) * 8.0 / span / 1e6,
              static_cast<double>(flows[1].bytes) * 8.0 / span / 1e6);
}

}  // namespace

int main() {
  constexpr double kLinkMbps = 40.0;
  constexpr double kRttMs = 10.0;

  // Single queue (the paper's interim arrangement).
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = kLinkMbps * 1e6;
  cfg.duration = sim::from_seconds(80.0);
  cfg.stats_start = sim::from_seconds(20.0);
  cfg.aqm.type = scenario::AqmType::kCoupledPi2;
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = sim::from_millis(kRttMs);
  scenario::TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.base_rtt = sim::from_millis(kRttMs);
  cfg.tcp_flows = {cubic, dctcp};
  const auto r = scenario::run_dumbbell(cfg);

  std::printf("Coupled PI2, single queue (the paper):\n");
  std::printf("  shared queue delay: mean %.2f ms, p99 %.2f ms\n",
              r.mean_qdelay_ms, r.p99_qdelay_ms);
  std::printf("  rates: cubic %.1f, dctcp %.1f Mb/s\n\n",
              r.mean_goodput_mbps(tcp::CcType::kCubic),
              r.mean_goodput_mbps(tcp::CcType::kDctcp));

  run_dualq(kLinkMbps, kRttMs);

  std::printf(
      "\nSame coupling, same fairness — but the dual queue removes the\n"
      "Classic queue's delay from the Scalable flow's path entirely.\n");
  return 0;
}
