// Coexistence scenario: one Cubic download and one DCTCP download share a
// 40 Mb/s bottleneck — the situation that (before PI2) made DCTCP unusable
// outside data centres. Runs the same mix through PIE and through the
// coupled PI2 AQM and prints the rate split.
#include <cstdio>

#include "scenario/dumbbell.hpp"

int main() {
  using namespace pi2;

  for (const auto aqm :
       {scenario::AqmType::kPie, scenario::AqmType::kCoupledPi2}) {
    scenario::DumbbellConfig cfg;
    cfg.link_rate_bps = 40e6;
    cfg.duration = sim::from_seconds(80.0);
    cfg.stats_start = sim::from_seconds(30.0);
    cfg.aqm.type = aqm;
    cfg.aqm.ecn_drop_threshold = 1.0;  // the paper's reworked PIE ECN rule

    scenario::TcpFlowSpec cubic;
    cubic.cc = tcp::CcType::kCubic;
    cubic.base_rtt = sim::from_millis(10);
    scenario::TcpFlowSpec dctcp;
    dctcp.cc = tcp::CcType::kDctcp;
    dctcp.base_rtt = sim::from_millis(10);
    cfg.tcp_flows = {cubic, dctcp};

    const auto r = scenario::run_dumbbell(cfg);
    const double c = r.mean_goodput_mbps(tcp::CcType::kCubic);
    const double d = r.mean_goodput_mbps(tcp::CcType::kDctcp);

    std::printf("%s:\n", std::string(scenario::to_string(aqm)).c_str());
    std::printf("  cubic %.1f Mb/s vs dctcp %.1f Mb/s (ratio %.2f)\n", c, d,
                d > 0 ? c / d : 0.0);
    std::printf("  queue delay mean %.1f ms, p99 %.1f ms\n\n", r.mean_qdelay_ms,
                r.p99_qdelay_ms);
  }
  std::printf(
      "PIE applies one probability to both flows, so DCTCP's linear response\n"
      "starves Cubic's square-root response. The coupled PI2 signals DCTCP\n"
      "with p' and Cubic with (p'/2)^2 — equation (14) — and the split evens\n"
      "out without per-flow state.\n");
  return 0;
}
