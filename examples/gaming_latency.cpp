// The paper's motivating scenario: a latency-sensitive application (online
// game / voice call, modelled as a thin CBR stream) shares a home downlink
// with bulk TCP downloads. Compares the latency the thin flow experiences
// under tail-drop FIFO, CoDel, PIE and PI2.
#include <cstdio>

#include "scenario/dumbbell.hpp"

int main() {
  using namespace pi2;

  std::printf("thin 0.5 Mb/s stream + 4 Cubic downloads on a 20 Mb/s link\n");
  std::printf("%-10s | %-14s %-14s %-12s\n", "AQM", "delay mean[ms]",
              "delay p99[ms]", "bulk [Mb/s]");

  for (const auto aqm : {scenario::AqmType::kFifo, scenario::AqmType::kCodel,
                         scenario::AqmType::kPie, scenario::AqmType::kPi2}) {
    scenario::DumbbellConfig cfg;
    cfg.link_rate_bps = 20e6;
    cfg.buffer_packets = 400;  // a typical bloated home-router buffer
    cfg.duration = sim::from_seconds(60.0);
    cfg.stats_start = sim::from_seconds(20.0);
    cfg.aqm.type = aqm;
    cfg.aqm.ecn = false;

    scenario::TcpFlowSpec bulk;
    bulk.cc = tcp::CcType::kCubic;
    bulk.count = 4;
    bulk.base_rtt = sim::from_millis(40);
    cfg.tcp_flows = {bulk};

    scenario::UdpFlowSpec game;
    game.rate_bps = 0.5e6;
    game.base_rtt = sim::from_millis(40);
    cfg.udp_flows = {game};

    const auto r = scenario::run_dumbbell(cfg);
    double bulk_total = 0.0;
    for (const auto& f : r.flows) {
      if (!f.is_udp) bulk_total += f.goodput_mbps;
    }
    std::printf("%-10s | %-14.1f %-14.1f %-12.1f\n",
                std::string(scenario::to_string(aqm)).c_str(), r.mean_qdelay_ms,
                r.p99_qdelay_ms, bulk_total);
  }
  std::printf(
      "\nEvery packet of the thin stream waits behind the bulk queue, so the\n"
      "queue delay above is the game's added lag. FIFO lets Cubic fill the\n"
      "whole buffer; the AQMs keep it near their targets, and PI2 does so\n"
      "with constant gains and no heuristic table.\n");
  return 0;
}
