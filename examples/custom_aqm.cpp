// Extending the library: implement a custom queue discipline against the
// public QueueDiscipline interface — here the DCTCP-style instantaneous step
// marker (mark everything when the queue exceeds a threshold) — and compare
// it with PI2's probabilistic marking for a DCTCP workload.
//
// This is the experiment behind Appendix A's equations (11) vs (12): a step
// threshold produces on-off marking trains (W = 2/p^2), while a smooth
// probabilistic marker yields W = 2/p and lower delay variance.
#include <cstdio>
#include <memory>

#include "net/bottleneck_link.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "stats/percentile.hpp"
#include "tcp/endpoint.hpp"

namespace {

using namespace pi2;

/// DCTCP's classic shallow step marker: mark every packet while the queue
/// holds more than K bytes.
class StepMarker final : public net::QueueDiscipline {
 public:
  explicit StepMarker(std::int64_t threshold_bytes)
      : threshold_bytes_(threshold_bytes) {}

  Verdict enqueue(const net::Packet& packet) override {
    if (net::ecn_capable(packet.ecn) &&
        view().backlog_bytes() >= threshold_bytes_) {
      return Verdict::kMark;
    }
    return Verdict::kAccept;
  }

 private:
  std::int64_t threshold_bytes_;
};

struct Outcome {
  double goodput_mbps;
  double qdelay_mean_ms;
  double qdelay_p99_ms;
};

Outcome run_with(std::unique_ptr<net::QueueDiscipline> qdisc) {
  sim::Simulator simulator{1};
  net::BottleneckLink::Config link_cfg;
  link_cfg.rate_bps = 40e6;
  net::BottleneckLink link{simulator, link_cfg, std::move(qdisc)};

  stats::PercentileSampler delay_ms;
  link.set_departure_probe([&](const net::Packet&, sim::Duration sojourn) {
    if (simulator.now() > sim::from_seconds(10)) {
      delay_ms.add(sim::to_millis(sojourn));
    }
  });

  tcp::TcpSender::Config sc;
  sc.flow = 0;
  sc.max_cwnd = 700;
  tcp::TcpSender sender{simulator, sc, tcp::make_dctcp()};
  tcp::TcpReceiver receiver{simulator, 0};
  std::int64_t delivered = 0;
  sender.set_output([&](net::Packet p) { link.send(p); });
  link.set_sink([&](net::Packet p) {
    simulator.after(sim::from_millis(5), [&receiver, p] { receiver.on_data(p); });
  });
  receiver.set_delivery_probe([&](const net::Packet& p) {
    if (simulator.now() > sim::from_seconds(10)) delivered += p.size;
  });
  receiver.set_ack_path([&](net::Packet a) {
    simulator.after(sim::from_millis(5), [&sender, a] { sender.on_ack(a); });
  });
  sender.start();
  simulator.run_until(sim::from_seconds(40.0));

  return {static_cast<double>(delivered) * 8.0 / 30.0 / 1e6, delay_ms.mean(),
          delay_ms.p99()};
}

}  // namespace

int main() {
  // DCTCP's recommended K ~ RTT * C / 7 would be ~47 kB here; use 30 kB.
  const Outcome step = run_with(std::make_unique<StepMarker>(30000));

  scenario::AqmConfig pi_cfg;  // plain PI: a *linear* marker for DCTCP
  pi_cfg.type = scenario::AqmType::kPi;
  pi_cfg.target = sim::from_millis(5);
  const Outcome pi = run_with(pi_cfg.make());

  std::printf("single DCTCP flow over a 40 Mb/s link, 10 ms RTT\n");
  std::printf("%-22s %-14s %-14s %-12s\n", "marker", "goodput[Mbps]", "mean[ms]",
              "p99[ms]");
  std::printf("%-22s %-14.1f %-14.2f %-12.2f\n", "step threshold (30kB)",
              step.goodput_mbps, step.qdelay_mean_ms, step.qdelay_p99_ms);
  std::printf("%-22s %-14.1f %-14.2f %-12.2f\n", "PI probabilistic (5ms)",
              pi.goodput_mbps, pi.qdelay_mean_ms, pi.qdelay_p99_ms);
  std::printf(
      "\nBoth markers sustain the link; the PI marker holds the queue at its\n"
      "delay target instead of a byte threshold. Writing the StepMarker took\n"
      "~10 lines against net::QueueDiscipline — the same interface every AQM\n"
      "in this repository implements.\n");
  return 0;
}
