// Shared helpers for the unit tests: a controllable QueueView and small
// packet builders.
#pragma once

#include "net/packet.hpp"
#include "net/queue_discipline.hpp"
#include "sim/simulator.hpp"

namespace pi2::testing {

/// QueueView whose state the test sets directly.
class FakeQueueView final : public net::QueueView {
 public:
  std::int64_t backlog_bytes_value = 0;
  std::int64_t backlog_packets_value = 0;
  double rate_bps = 10e6;

  [[nodiscard]] std::int64_t backlog_bytes() const override {
    return backlog_bytes_value;
  }
  [[nodiscard]] std::int64_t backlog_packets() const override {
    return backlog_packets_value;
  }
  [[nodiscard]] double link_rate_bps() const override { return rate_bps; }
  [[nodiscard]] pi2::sim::Duration queue_delay() const override {
    return pi2::sim::from_seconds(static_cast<double>(backlog_bytes_value) * 8.0 /
                                  rate_bps);
  }

  /// Sets the backlog so that queue_delay() reports `delay_s` seconds.
  void set_delay_seconds(double delay_s) {
    backlog_bytes_value = static_cast<std::int64_t>(delay_s * rate_bps / 8.0);
    backlog_packets_value = backlog_bytes_value / net::kDefaultMss;
  }
};

inline net::Packet make_data_packet(net::Ecn ecn = net::Ecn::kNotEct,
                                    std::int32_t flow = 0, std::int64_t seq = 0) {
  net::Packet p;
  p.flow = flow;
  p.seq = seq;
  p.ecn = ecn;
  return p;
}

/// Runs `updates` AQM update intervals with the view pinned at the given
/// queue delay, advancing the simulator clock.
template <typename Aqm>
void run_updates(pi2::sim::Simulator& sim, FakeQueueView& view, Aqm& /*aqm*/,
                 double delay_s, int updates, pi2::sim::Duration t_update) {
  view.set_delay_seconds(delay_s);
  sim.run_until(sim.now() + t_update * updates);
}

/// Empirical signalling (drop or mark) frequency of a discipline at a fixed
/// queue state, over `trials` packets.
inline double signal_fraction(net::QueueDiscipline& aqm, net::Ecn ecn, int trials) {
  int signalled = 0;
  for (int i = 0; i < trials; ++i) {
    const auto v = aqm.enqueue(make_data_packet(ecn));
    if (v != net::QueueDiscipline::Verdict::kAccept) ++signalled;
  }
  return static_cast<double>(signalled) / trials;
}

}  // namespace pi2::testing
