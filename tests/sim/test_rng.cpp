#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace pi2::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng{11};
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformBelowIsUnbiasedOverSmallRange) {
  Rng rng{13};
  std::vector<int> counts(7, 0);
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_below(7)];
  for (int c : counts) EXPECT_NEAR(c, kN / 7, 500);
}

TEST(Rng, UniformBelowZeroReturnsZero) {
  Rng rng{17};
  EXPECT_EQ(rng.uniform_below(0), 0u);
}

TEST(Rng, UniformBelowOneReturnsZero) {
  Rng rng{17};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{19};
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng{23};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng{29};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.bounded_pareto(1.2, 10.0, 1000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1000.0);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  // The median should sit far below the midpoint of the support.
  Rng rng{31};
  std::vector<double> v;
  for (int i = 0; i < 10001; ++i) v.push_back(rng.bounded_pareto(1.2, 10.0, 1e6));
  std::nth_element(v.begin(), v.begin() + 5000, v.end());
  EXPECT_LT(v[5000], 100.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{37};
  Rng child = parent.split();
  // Child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a{41};
  Rng b{41};
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, DeriveSeedIsDeterministicAndIndexSensitive) {
  EXPECT_EQ(Rng::derive_seed(1, 0), Rng::derive_seed(1, 0));
  EXPECT_NE(Rng::derive_seed(1, 0), Rng::derive_seed(1, 1));
  EXPECT_NE(Rng::derive_seed(1, 0), Rng::derive_seed(2, 0));
}

TEST(Rng, DeriveSeedStreamsHaveDistinctFirstDraws) {
  // The parallel sweep gives grid point i the stream derive_seed(base, i);
  // the first draws across 100 points must all differ (a collision would
  // mean two experiments share randomness).
  std::vector<std::uint64_t> first_draws;
  for (std::uint64_t i = 0; i < 100; ++i) {
    Rng rng{Rng::derive_seed(1, i)};
    first_draws.push_back(rng.next_u64());
  }
  std::sort(first_draws.begin(), first_draws.end());
  EXPECT_EQ(std::adjacent_find(first_draws.begin(), first_draws.end()),
            first_draws.end());
}

TEST(Rng, DeriveSeedStreamsAreUncorrelated) {
  // Statistical smoke test: adjacent per-point streams must not correlate.
  // Pearson correlation of 10k uniform pairs has sd ~ 1/sqrt(10k) = 0.01;
  // |r| < 0.05 is a 5-sigma bound.
  constexpr int kN = 10000;
  for (std::uint64_t point = 0; point + 1 < 8; ++point) {
    Rng a{Rng::derive_seed(7, point)};
    Rng b{Rng::derive_seed(7, point + 1)};
    double sum_a = 0, sum_b = 0, sum_ab = 0, sum_a2 = 0, sum_b2 = 0;
    for (int i = 0; i < kN; ++i) {
      const double x = a.uniform();
      const double y = b.uniform();
      sum_a += x;
      sum_b += y;
      sum_ab += x * y;
      sum_a2 += x * x;
      sum_b2 += y * y;
    }
    const double cov = sum_ab / kN - (sum_a / kN) * (sum_b / kN);
    const double var_a = sum_a2 / kN - (sum_a / kN) * (sum_a / kN);
    const double var_b = sum_b2 / kN - (sum_b / kN) * (sum_b / kN);
    const double r = cov / std::sqrt(var_a * var_b);
    EXPECT_LT(std::abs(r), 0.05) << "points " << point << "," << point + 1;
  }
}

}  // namespace
}  // namespace pi2::sim
