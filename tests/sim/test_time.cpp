#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace pi2::sim {
namespace {

TEST(Time, FromSecondsRoundTrips) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(0.0)), 0.0);
  EXPECT_NEAR(to_seconds(from_seconds(1e-9)), 1e-9, 1e-18);
}

TEST(Time, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(from_seconds(1e-9 * 0.4).count(), 0);
  EXPECT_EQ(from_seconds(1e-9 * 0.6).count(), 1);
}

TEST(Time, NegativeDurations) {
  EXPECT_EQ(from_seconds(-1.0).count(), -1000000000);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(-2.5)), -2.5);
}

TEST(Time, MillisecondHelpers) {
  EXPECT_DOUBLE_EQ(to_millis(from_millis(20.0)), 20.0);
  EXPECT_EQ(from_millis(1.0), std::chrono::milliseconds{1});
}

TEST(Time, InfinityIsLargerThanAnyPracticalTime) {
  EXPECT_GT(kTimeInfinity, from_seconds(1e9));
  EXPECT_GT(kTimeInfinity, kTimeZero);
}

TEST(Time, ChronoInteroperability) {
  const Time t = std::chrono::seconds{2} + std::chrono::milliseconds{500};
  EXPECT_DOUBLE_EQ(to_seconds(t), 2.5);
}

}  // namespace
}  // namespace pi2::sim
