#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace pi2::sim {
namespace {

TEST(Scheduler, EmptyInitially) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_time(), kTimeInfinity);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time{30}, [&] { order.push_back(3); });
  s.schedule_at(Time{10}, [&] { order.push_back(1); });
  s.schedule_at(Time{20}, [&] { order.push_back(2); });
  while (!s.empty()) s.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesBreakInSchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(Time{100}, [&order, i] { order.push_back(i); });
  }
  while (!s.empty()) s.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RunNextReturnsEventTime) {
  Scheduler s;
  s.schedule_at(Time{55}, [] {});
  EXPECT_EQ(s.run_next(), Time{55});
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.schedule_at(Time{10}, [&] { ran = true; });
  h.cancel();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelIsIdempotent) {
  Scheduler s;
  EventHandle h = s.schedule_at(Time{10}, [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, PendingReflectsLifecycle) {
  Scheduler s;
  EventHandle h = s.schedule_at(Time{10}, [] {});
  EXPECT_TRUE(h.pending());
  s.run_next();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, DefaultHandleIsNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, must not crash
}

TEST(Scheduler, CancelledEventDoesNotBlockNextTime) {
  Scheduler s;
  EventHandle h = s.schedule_at(Time{10}, [] {});
  s.schedule_at(Time{20}, [] {});
  h.cancel();
  EXPECT_EQ(s.next_time(), Time{20});
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time{10}, [&] {
    order.push_back(1);
    s.schedule_at(Time{15}, [&] { order.push_back(2); });
  });
  while (!s.empty()) s.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, CountsExecutedEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(Time{i}, [] {});
  while (!s.empty()) s.run_next();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, CompactionBoundsHeapUnderCancelChurn) {
  // Regression: the seed scheduler kept cancelled entries until they
  // surfaced, so schedule/cancel churn (RTO timers) grew the heap without
  // bound. Compaction must keep dead entries below half the heap.
  Scheduler s;
  constexpr int kTimers = 1'000'000;
  EventHandle pending;
  for (int i = 0; i < kTimers; ++i) {
    pending.cancel();
    // Far-future timer that will never fire before being replaced.
    pending = s.schedule_at(Time{1'000'000'000 + i}, [] {});
    EXPECT_LE(s.heap_size(), 2 * s.live_size() + 64)
        << "heap carries unbounded cancelled garbage at i=" << i;
  }
  EXPECT_LE(s.heap_size(), 128u);
  EXPECT_EQ(s.live_size(), 1u);
  EXPECT_GT(s.compactions(), 0u);
  pending.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, SlotReuseDoesNotConfuseStaleHandles) {
  // After an event fires, its slab slot may be recycled for a new event; a
  // stale handle to the fired event must not cancel or observe the new one.
  Scheduler s;
  EventHandle first = s.schedule_at(Time{1}, [] {});
  s.run_next();  // fires `first`, freeing its slot
  bool second_ran = false;
  EventHandle second = s.schedule_at(Time{2}, [&] { second_ran = true; });
  EXPECT_FALSE(first.pending());
  first.cancel();  // stale: must be a no-op on the recycled slot
  EXPECT_TRUE(second.pending());
  s.run_next();
  EXPECT_TRUE(second_ran);
}

TEST(Scheduler, CancelInsideCallbackOfSameInstant) {
  Scheduler s;
  bool victim_ran = false;
  EventHandle victim;
  s.schedule_at(Time{10}, [&] { victim.cancel(); });
  victim = s.schedule_at(Time{10}, [&] { victim_ran = true; });
  while (!s.empty()) s.run_next();
  EXPECT_FALSE(victim_ran);
}

TEST(Scheduler, LargeCallbacksFallBackToHeapCorrectly) {
  // Captures beyond UniqueFunction's inline buffer must still run and
  // destroy correctly (heap fallback path).
  Scheduler s;
  auto big = std::make_shared<std::vector<int>>(1000, 7);
  std::array<std::shared_ptr<std::vector<int>>, 8> copies;
  copies.fill(big);
  int seen = 0;
  s.schedule_at(Time{1}, [copies, &seen] { seen = (*copies[7])[0]; });
  copies.fill(nullptr);  // only the scheduled callback holds references now
  EXPECT_EQ(big.use_count(), 9);
  s.run_next();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(big.use_count(), 1);  // callback's captures were destroyed
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  std::vector<std::int64_t> times;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t t = (i * 7919) % 1000;
    s.schedule_at(Time{t}, [&times, t] { times.push_back(t); });
  }
  while (!s.empty()) s.run_next();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 1000u);
}

}  // namespace
}  // namespace pi2::sim
