#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pi2::sim {
namespace {

TEST(Scheduler, EmptyInitially) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.next_time(), kTimeInfinity);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time{30}, [&] { order.push_back(3); });
  s.schedule_at(Time{10}, [&] { order.push_back(1); });
  s.schedule_at(Time{20}, [&] { order.push_back(2); });
  while (!s.empty()) s.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, TiesBreakInSchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(Time{100}, [&order, i] { order.push_back(i); });
  }
  while (!s.empty()) s.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RunNextReturnsEventTime) {
  Scheduler s;
  s.schedule_at(Time{55}, [] {});
  EXPECT_EQ(s.run_next(), Time{55});
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.schedule_at(Time{10}, [&] { ran = true; });
  h.cancel();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelIsIdempotent) {
  Scheduler s;
  EventHandle h = s.schedule_at(Time{10}, [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, PendingReflectsLifecycle) {
  Scheduler s;
  EventHandle h = s.schedule_at(Time{10}, [] {});
  EXPECT_TRUE(h.pending());
  s.run_next();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, DefaultHandleIsNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, must not crash
}

TEST(Scheduler, CancelledEventDoesNotBlockNextTime) {
  Scheduler s;
  EventHandle h = s.schedule_at(Time{10}, [] {});
  s.schedule_at(Time{20}, [] {});
  h.cancel();
  EXPECT_EQ(s.next_time(), Time{20});
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(Time{10}, [&] {
    order.push_back(1);
    s.schedule_at(Time{15}, [&] { order.push_back(2); });
  });
  while (!s.empty()) s.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, CountsExecutedEvents) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(Time{i}, [] {});
  while (!s.empty()) s.run_next();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  std::vector<std::int64_t> times;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t t = (i * 7919) % 1000;
    s.schedule_at(Time{t}, [&times, t] { times.push_back(t); });
  }
  while (!s.empty()) s.run_next();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 1000u);
}

}  // namespace
}  // namespace pi2::sim
