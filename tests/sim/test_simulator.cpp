#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pi2::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), kTimeZero);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  Time seen{};
  s.at(Time{100}, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Time{100});
  EXPECT_EQ(s.now(), Time{100});
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.at(Time{100}, [&] { ++count; });
  s.at(Time{200}, [&] { ++count; });
  s.run_until(Time{150});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), Time{150});
  s.run_until(Time{250});
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilInclusiveOfBoundaryEvents) {
  Simulator s;
  bool ran = false;
  s.at(Time{150}, [&] { ran = true; });
  s.run_until(Time{150});
  EXPECT_TRUE(ran);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator s;
  std::vector<std::int64_t> at;
  s.at(Time{50}, [&] {
    s.after(Duration{25}, [&] { at.push_back(s.now().count()); });
  });
  s.run();
  EXPECT_EQ(at, (std::vector<std::int64_t>{75}));
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator s;
  s.at(Time{100}, [&] {
    // Scheduling in the past must execute "immediately" (at now), not warp
    // the clock backwards.
    s.at(Time{10}, [&] { EXPECT_EQ(s.now(), Time{100}); });
  });
  s.run();
  EXPECT_EQ(s.now(), Time{100});
}

TEST(Simulator, NegativeDelayClampsToZero) {
  Simulator s;
  s.at(Time{10}, [&] {
    s.after(Duration{-50}, [&] { EXPECT_EQ(s.now(), Time{10}); });
  });
  s.run();
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesClock) {
  Simulator s;
  s.run_until(Time{12345});
  EXPECT_EQ(s.now(), Time{12345});
}

TEST(Simulator, EventCountTracksExecution) {
  Simulator s;
  for (int i = 1; i <= 5; ++i) s.at(Time{i}, [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, RngIsSeededFromConstructor) {
  Simulator a{5};
  Simulator b{5};
  EXPECT_EQ(a.rng().next_u64(), b.rng().next_u64());
  Simulator c{6};
  Simulator d{7};
  EXPECT_NE(c.rng().next_u64(), d.rng().next_u64());
}

TEST(Simulator, ClampedEventsCounterStartsAtZero) {
  Simulator s;
  s.at(Time{10}, [] {});
  s.after(Duration{5}, [] {});
  s.run();
  EXPECT_EQ(s.clamped_events(), 0u);
}

TEST(Simulator, ClampedEventsCountsPastTimeSchedules) {
  Simulator s;
  s.at(Time{100}, [&] {
    s.at(Time{10}, [] {});  // in the past: clamped and counted
    s.at(Time{100}, [] {}); // exactly now: not a clamp
  });
  s.run();
  EXPECT_EQ(s.clamped_events(), 1u);
}

TEST(Simulator, NegativeDelayAfterCountsAsClamp) {
  // after() routes through at(), so a negative delay is clamped to now AND
  // counted — a component computing nonsense delays can no longer hide.
  Simulator s;
  s.at(Time{10}, [&] { s.after(Duration{-50}, [] {}); });
  s.run();
  EXPECT_EQ(s.clamped_events(), 1u);
}

TEST(Simulator, ZeroDelayAfterIsNotAClamp) {
  Simulator s;
  s.at(Time{10}, [&] { s.after(Duration{0}, [] {}); });
  s.run();
  EXPECT_EQ(s.clamped_events(), 0u);
}

TEST(Simulator, PeriodicSelfReschedulingPattern) {
  Simulator s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    s.after(Duration{10}, tick);
  };
  s.after(Duration{10}, tick);
  s.run_until(Time{100});
  EXPECT_EQ(ticks, 10);
}

}  // namespace
}  // namespace pi2::sim
