#include "scenario/short_flows.hpp"

#include <gtest/gtest.h>

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::from_seconds;

ShortFlowConfig quick_config(AqmType aqm) {
  ShortFlowConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.aqm.type = aqm;
  cfg.aqm.ecn = false;
  cfg.offered_load = 0.4;
  cfg.duration = from_seconds(30.0);
  cfg.stats_start = from_seconds(5.0);
  cfg.base_rtt = from_millis(50);
  return cfg;
}

TEST(BoundedParetoMean, MatchesClosedForm) {
  // For shape 1.2, lo 3, hi 700 the mean is computable; cross-check against
  // a large sample.
  const double analytic = bounded_pareto_mean(1.2, 3.0, 700.0);
  pi2::sim::Rng rng{42};
  double sum = 0.0;
  constexpr int kN = 400000;
  for (int i = 0; i < kN; ++i) sum += rng.bounded_pareto(1.2, 3.0, 700.0);
  EXPECT_NEAR(sum / kN, analytic, analytic * 0.03);
}

TEST(ShortFlows, FlowsCompleteUnderPi2) {
  const auto r = run_short_flows(quick_config(AqmType::kPi2));
  EXPECT_GT(r.flows_started, 50);
  // Nearly everything started early enough should have completed.
  EXPECT_GT(static_cast<double>(r.flows_completed) /
                static_cast<double>(r.flows_started),
            0.8);
  EXPECT_GT(r.fct_ms.count(), 0);
}

TEST(ShortFlows, ShortFlowsFinishFasterThanLong) {
  const auto r = run_short_flows(quick_config(AqmType::kPi2));
  if (r.fct_short_ms.count() > 5 && r.fct_long_ms.count() > 5) {
    EXPECT_LT(r.fct_short_ms.median(), r.fct_long_ms.median());
  }
}

TEST(ShortFlows, MinimumFctIsBoundedByRtt) {
  // Nothing completes faster than ~2 RTTs (handshake-free model: one full
  // window exchange minimum).
  const auto r = run_short_flows(quick_config(AqmType::kPi2));
  ASSERT_GT(r.fct_ms.count(), 0);
  EXPECT_GE(r.fct_ms.quantile(0.0), 50.0);  // >= 1 base RTT
}

TEST(ShortFlows, DeterministicPerSeed) {
  const auto a = run_short_flows(quick_config(AqmType::kPi2));
  const auto b = run_short_flows(quick_config(AqmType::kPi2));
  EXPECT_EQ(a.flows_started, b.flows_started);
  EXPECT_EQ(a.flows_completed, b.flows_completed);
  EXPECT_DOUBLE_EQ(a.fct_ms.mean(), b.fct_ms.mean());
}

TEST(ShortFlows, FctComparableAcrossPieBarePieAndPi2) {
  // The paper's §6 claim: short flow completion times under PIE, bare-PIE
  // and PI2 are essentially the same.
  const auto pie = run_short_flows(quick_config(AqmType::kPie));
  const auto bare = run_short_flows(quick_config(AqmType::kBarePie));
  const auto pi2r = run_short_flows(quick_config(AqmType::kPi2));
  ASSERT_GT(pie.fct_short_ms.count(), 10);
  ASSERT_GT(bare.fct_short_ms.count(), 10);
  ASSERT_GT(pi2r.fct_short_ms.count(), 10);
  const double m_pie = pie.fct_short_ms.median();
  const double m_bare = bare.fct_short_ms.median();
  const double m_pi2 = pi2r.fct_short_ms.median();
  EXPECT_NEAR(m_pi2 / m_pie, 1.0, 0.35);
  EXPECT_NEAR(m_bare / m_pie, 1.0, 0.35);
}

TEST(ShortFlows, BackgroundFlowsRaiseShortFlowDelay) {
  auto cfg = quick_config(AqmType::kPi2);
  const auto light = run_short_flows(cfg);
  cfg.background_flows = 4;
  const auto heavy = run_short_flows(cfg);
  ASSERT_GT(light.fct_short_ms.count(), 10);
  ASSERT_GT(heavy.fct_short_ms.count(), 10);
  EXPECT_GT(heavy.fct_short_ms.median(), light.fct_short_ms.median());
}

TEST(ShortFlows, HigherLoadRaisesFct) {
  auto cfg = quick_config(AqmType::kPi2);
  cfg.offered_load = 0.2;
  const auto light = run_short_flows(cfg);
  cfg.offered_load = 0.8;
  const auto heavy = run_short_flows(cfg);
  ASSERT_GT(light.fct_ms.count(), 10);
  ASSERT_GT(heavy.fct_ms.count(), 10);
  EXPECT_GE(heavy.fct_ms.quantile(0.9), light.fct_ms.quantile(0.9) * 0.9);
}

}  // namespace
}  // namespace pi2::scenario
