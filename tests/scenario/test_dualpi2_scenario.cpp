// End-to-end DualPI2 through the first-class scenario path: ECT-codepoint
// routing into the L/C bands, per-band counter conservation against the
// aggregate link counters, and RFC 9332 overload protection shedding an
// unresponsive Not-ECT flood while the Classic delay stays governed.
#include <gtest/gtest.h>

#include "scenario/dumbbell.hpp"

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;
using std::chrono::seconds;

DumbbellConfig dualpi2_config() {
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{12}};
  cfg.stats_start = Time{seconds{4}};
  cfg.aqm.type = AqmType::kDualPi2;
  TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = from_millis(10);
  cfg.tcp_flows = {cubic};
  return cfg;
}

void expect_band_conservation(const RunResult& r) {
  EXPECT_EQ(r.band_l.enqueued + r.band_c.enqueued, r.counters.enqueued);
  EXPECT_EQ(r.band_l.forwarded + r.band_c.forwarded, r.counters.forwarded);
  EXPECT_EQ(r.band_l.marked + r.band_c.marked, r.counters.marked);
  EXPECT_EQ(r.band_l.aqm_dropped + r.band_c.aqm_dropped,
            r.counters.aqm_dropped);
  EXPECT_EQ(r.band_l.tail_dropped + r.band_c.tail_dropped,
            r.counters.tail_dropped);
}

TEST(DualPi2Scenario, Ect1FloodRoutesToLBand) {
  auto cfg = dualpi2_config();
  UdpFlowSpec flood;
  flood.rate_bps = 1.5 * cfg.link_rate_bps;
  flood.ecn = net::Ecn::kEct1;
  flood.base_rtt = from_millis(10);
  cfg.udp_flows = {flood};
  const auto r = run_dumbbell(cfg);
  // The flood fills the L band; the Cubic flow keeps the C band in use.
  EXPECT_GT(r.band_l.enqueued, 0);
  EXPECT_GT(r.band_c.enqueued, 0);
  expect_band_conservation(r);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.guard_events, 0u);
  EXPECT_EQ(r.clamped_events, 0u);
}

TEST(DualPi2Scenario, NotEctTrafficStaysClassic) {
  auto cfg = dualpi2_config();
  UdpFlowSpec udp;
  udp.rate_bps = 2e6;
  udp.ecn = net::Ecn::kNotEct;
  udp.base_rtt = from_millis(10);
  cfg.udp_flows = {udp};
  const auto r = run_dumbbell(cfg);
  // Nothing here carries ECT(1)/CE on arrival, so the L band must stay idle.
  EXPECT_EQ(r.band_l.enqueued, 0);
  EXPECT_EQ(r.band_l.forwarded, 0);
  EXPECT_EQ(r.band_c.enqueued, r.counters.enqueued);
  expect_band_conservation(r);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.guard_events, 0u);
}

TEST(DualPi2Scenario, OverloadShedsUnresponsiveNotEctFlood) {
  auto cfg = dualpi2_config();
  // The campaign configuration: lift the Classic cap so drops can shed a
  // 2x unresponsive flood (a 25% cap cannot remove 50% of the arrivals).
  cfg.aqm.max_classic_prob = 1.0;
  UdpFlowSpec flood;
  flood.rate_bps = 2.0 * cfg.link_rate_bps;
  flood.ecn = net::Ecn::kNotEct;
  flood.base_rtt = from_millis(10);
  cfg.udp_flows = {flood};
  const auto r = run_dumbbell(cfg);
  // The PI controller must shed the excess via Classic drops and keep the
  // queue governed instead of letting it grow toward the buffer limit.
  EXPECT_GT(r.window_band_c.aqm_dropped, 0);
  EXPECT_LT(r.mean_qdelay_ms, 100.0);
  expect_band_conservation(r);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.guard_events, 0u);
}

}  // namespace
}  // namespace pi2::scenario
