// Hybrid fluid/packet scenarios: determinism, conservation, coexistence,
// and the batched ACK clock. These are the scenario-level guarantees the
// flow-scale engine rests on — run_dumbbell() must stay a pure function of
// its config whatever mix of engine tiers is active.
#include <gtest/gtest.h>

#include <cmath>

#include "scenario/dumbbell.hpp"

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::from_seconds;

DumbbellConfig mixed_config() {
  DumbbellConfig cfg;
  cfg.link_rate_bps = 20e6;
  cfg.duration = from_seconds(4.0);
  cfg.stats_start = from_seconds(1.0);
  cfg.aqm.type = AqmType::kPi2;
  cfg.aqm.ecn_drop_threshold = 1.0;
  TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = from_millis(20);
  cfg.tcp_flows.push_back(cubic);
  TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.base_rtt = from_millis(20);
  cfg.tcp_flows.push_back(dctcp);
  FluidFlowSpec fluid;
  fluid.cc = tcp::CcType::kReno;
  fluid.count = 20;
  fluid.base_rtt = from_millis(20);
  cfg.fluid_flows.push_back(fluid);
  return cfg;
}

TEST(FluidMix, RerunIsBitwiseDeterministic) {
  const DumbbellConfig cfg = mixed_config();
  const RunResult a = run_dumbbell(cfg);
  const RunResult b = run_dumbbell(cfg);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.fluid.ticks, b.fluid.ticks);
  EXPECT_EQ(a.fluid.arrival_bytes, b.fluid.arrival_bytes);
  EXPECT_EQ(a.fluid.served_bytes, b.fluid.served_bytes);
  EXPECT_EQ(a.fluid.dropped_bytes, b.fluid.dropped_bytes);
  EXPECT_EQ(a.fluid.final_backlog_bytes, b.fluid.final_backlog_bytes);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].goodput_mbps, b.flows[i].goodput_mbps) << i;
  }
  EXPECT_EQ(a.mean_qdelay_ms, b.mean_qdelay_ms);
}

TEST(FluidMix, FluidConservationHoldsWholeRun) {
  const RunResult result = run_dumbbell(mixed_config());
  EXPECT_GT(result.fluid.ticks, 0u);
  EXPECT_GT(result.fluid.arrival_bytes, 0.0);
  // arrival == served + dropped + final backlog, exactly by construction
  // (1e-6 relative slack for FP summation order only).
  const double residual = std::abs(
      result.fluid.arrival_bytes -
      (result.fluid.served_bytes + result.fluid.dropped_bytes +
       result.fluid.final_backlog_bytes));
  EXPECT_LE(residual, 1e-6 * std::max(1.0, result.fluid.arrival_bytes));
}

TEST(FluidMix, FluidAndPacketTiersCoexist) {
  const RunResult result = run_dumbbell(mixed_config());
  // The fluid background carried real bytes through the link...
  EXPECT_GT(result.fluid.served_bytes, 0.0);
  // ...and each foreground packet flow still made progress against it.
  ASSERT_EQ(result.flows.size(), 3u);  // cubic, dctcp, one fluid spec
  EXPECT_GT(result.flows[0].goodput_mbps, 0.0);
  EXPECT_GT(result.flows[1].goodput_mbps, 0.0);
  EXPECT_TRUE(result.flows[2].is_fluid);
  EXPECT_GT(result.flows[2].goodput_mbps, 0.0);
  // 20 fluid Reno flows against 2 packet flows must dominate the link, and
  // the link should be busy.
  EXPECT_GT(result.utilization, 0.5);
  EXPECT_EQ(result.clamped_events, 0u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(FluidMix, FluidStatsAreZeroWithoutFluidSpecs) {
  DumbbellConfig cfg = mixed_config();
  cfg.fluid_flows.clear();
  const RunResult result = run_dumbbell(cfg);
  EXPECT_EQ(result.fluid.ticks, 0u);
  EXPECT_EQ(result.fluid.arrival_bytes, 0.0);
  EXPECT_EQ(result.fluid.served_bytes, 0.0);
  EXPECT_EQ(result.fluid.dropped_bytes, 0.0);
  EXPECT_EQ(result.fluid.final_backlog_bytes, 0.0);
}

TEST(FluidMix, MeanGoodputExcludesFluidSpecs) {
  const DumbbellConfig cfg = mixed_config();
  const RunResult result = run_dumbbell(cfg);
  // mean_goodput_mbps(kReno) must not pick up the fluid Reno spec.
  EXPECT_EQ(result.mean_goodput_mbps(tcp::CcType::kReno), 0.0);
  EXPECT_GT(result.mean_goodput_mbps(tcp::CcType::kCubic), 0.0);
}

TEST(BatchedAckClock, FewerSchedulerEventsSameMacroBehaviour) {
  // 20 packet flows, exact vs 1 ms-quantum ACK clock. Batching must cut
  // scheduler events meaningfully while leaving the macroscopic outcome —
  // aggregate goodput, utilization — in the same regime (delivery shifts by
  // at most one quantum, so per-flow dynamics are not bit-identical).
  DumbbellConfig cfg;
  cfg.link_rate_bps = 20e6;
  cfg.duration = from_seconds(4.0);
  cfg.stats_start = from_seconds(1.0);
  cfg.aqm.type = AqmType::kPi2;
  TcpFlowSpec flows;
  flows.cc = tcp::CcType::kCubic;
  flows.count = 20;
  flows.base_rtt = from_millis(40);
  cfg.tcp_flows.push_back(flows);

  const RunResult exact = run_dumbbell(cfg);
  cfg.ack_quantum = from_millis(1);
  const RunResult batched = run_dumbbell(cfg);

  EXPECT_LT(batched.events_executed, exact.events_executed * 0.8)
      << "batching saved <20% of scheduler events";

  auto total_goodput = [](const RunResult& r) {
    double sum = 0.0;
    for (const auto& f : r.flows) sum += f.goodput_mbps;
    return sum;
  };
  EXPECT_NEAR(total_goodput(batched), total_goodput(exact),
              0.25 * total_goodput(exact));
  EXPECT_NEAR(batched.utilization, exact.utilization, 0.2);
  EXPECT_EQ(batched.clamped_events, 0u);
}

TEST(BatchedAckClock, BatchedRunIsDeterministic) {
  DumbbellConfig cfg = mixed_config();
  cfg.ack_quantum = from_millis(1);
  const RunResult a = run_dumbbell(cfg);
  const RunResult b = run_dumbbell(cfg);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.counters.forwarded, b.counters.forwarded);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].goodput_mbps, b.flows[i].goodput_mbps) << i;
  }
}

TEST(FluidMix, ValidatesFluidFields) {
  DumbbellConfig cfg = mixed_config();
  cfg.fluid_flows[0].count = -1;
  EXPECT_NE(cfg.validate(), "");
  cfg = mixed_config();
  cfg.fluid_dt = pi2::sim::Duration{0};
  EXPECT_NE(cfg.validate(), "");
  cfg = mixed_config();
  cfg.ack_quantum = -from_millis(1);
  EXPECT_NE(cfg.validate(), "");
  cfg = mixed_config();
  EXPECT_EQ(cfg.validate(), "");
}

}  // namespace
}  // namespace pi2::scenario
