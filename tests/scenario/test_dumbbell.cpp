#include "scenario/dumbbell.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/pi2.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/sampler.hpp"

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;
using std::chrono::seconds;

DumbbellConfig base_config() {
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{30}};
  cfg.stats_start = Time{seconds{10}};
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kReno;
  flow.count = 2;
  flow.base_rtt = from_millis(50);
  cfg.tcp_flows = {flow};
  cfg.aqm.type = AqmType::kPi2;
  cfg.aqm.ecn = false;
  return cfg;
}

TEST(Dumbbell, AchievesHighUtilization) {
  const auto r = run_dumbbell(base_config());
  EXPECT_GT(r.utilization, 0.85);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
}

TEST(Dumbbell, GoodputSumsToNearLinkRate) {
  const auto r = run_dumbbell(base_config());
  double total = 0.0;
  for (const auto& f : r.flows) total += f.goodput_mbps;
  EXPECT_GT(total, 8.5);
  EXPECT_LT(total, 10.1);
}

TEST(Dumbbell, QueueDelayNearAqmTarget) {
  const auto r = run_dumbbell(base_config());
  EXPECT_GT(r.mean_qdelay_ms, 5.0);
  EXPECT_LT(r.mean_qdelay_ms, 40.0);
}

TEST(Dumbbell, DeterministicForSameSeed) {
  const auto a = run_dumbbell(base_config());
  const auto b = run_dumbbell(base_config());
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].goodput_mbps, b.flows[i].goodput_mbps);
  }
  EXPECT_DOUBLE_EQ(a.mean_qdelay_ms, b.mean_qdelay_ms);
  EXPECT_EQ(a.counters.aqm_dropped, b.counters.aqm_dropped);
}

TEST(Dumbbell, DifferentSeedsDiffer) {
  auto cfg = base_config();
  const auto a = run_dumbbell(cfg);
  cfg.seed = 99;
  const auto b = run_dumbbell(cfg);
  EXPECT_NE(a.counters.aqm_dropped, b.counters.aqm_dropped);
}

TEST(Dumbbell, FlowChurnStartsAndStops) {
  auto cfg = base_config();
  TcpFlowSpec late;
  late.cc = tcp::CcType::kReno;
  late.count = 3;
  late.start = Time{seconds{10}};
  late.stop = Time{seconds{20}};
  late.base_rtt = from_millis(50);
  cfg.tcp_flows.push_back(late);
  const auto r = run_dumbbell(cfg);
  ASSERT_EQ(r.flows.size(), 5u);
  // The late flows got some but less throughput (only active 1/3 of the
  // stats window).
  EXPECT_GT(r.flows[2].goodput_mbps, 0.0);
  EXPECT_LT(r.flows[2].goodput_mbps, r.flows[0].goodput_mbps);
}

TEST(Dumbbell, UdpFlowsDeliverAtTheirRate) {
  auto cfg = base_config();
  UdpFlowSpec udp;
  udp.rate_bps = 2e6;
  udp.count = 1;
  udp.base_rtt = from_millis(50);
  cfg.udp_flows = {udp};
  const auto r = run_dumbbell(cfg);
  // UDP is unresponsive: it should get close to its sending rate while the
  // TCP flows absorb the drops.
  EXPECT_NEAR(r.mean_udp_goodput_mbps(), 2.0, 0.4);
}

TEST(Dumbbell, RateChangeTakesEffect) {
  auto cfg = base_config();
  cfg.rate_changes = {{Time{seconds{15}}, 2e6}};
  const auto r = run_dumbbell(cfg);
  // Total delivered rate after the change is bounded by the new rate.
  const double late_rate =
      r.total_throughput_series.mean_over(Time{seconds{20}}, Time{seconds{30}});
  EXPECT_LT(late_rate, 2.6);
}

TEST(Dumbbell, StatsWindowExcludesWarmup) {
  // An absurd 25 s warmup in a 30 s run leaves a 5 s stats window; per-packet
  // samples must only come from it.
  auto cfg = base_config();
  cfg.stats_start = Time{seconds{25}};
  const auto r = run_dumbbell(cfg);
  // 5 s at ~833 pkt/s max.
  EXPECT_LT(r.qdelay_ms_packets.count(), 6000);
  EXPECT_GT(r.qdelay_ms_packets.count(), 100);
}

TEST(Dumbbell, ObservedSignalRateConsistentWithCounters) {
  const auto r = run_dumbbell(base_config());
  const double rate = r.observed_signal_rate();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  EXPECT_GT(r.counters.aqm_dropped, 0);
}

TEST(Dumbbell, RateStepViaFaultScheduleTakesEffect) {
  // The FaultInjector path must constrain throughput exactly like the
  // legacy rate_changes hook does.
  auto cfg = base_config();
  cfg.faults.rate_step(Time{seconds{15}}, 2e6);
  const auto r = run_dumbbell(cfg);
  const double late_rate =
      r.total_throughput_series.mean_over(Time{seconds{20}}, Time{seconds{30}});
  EXPECT_LT(late_rate, 2.6);
  EXPECT_EQ(r.fault_counters.rate_changes, 1);
}

TEST(Dumbbell, InvariantMonitorRunsByDefault) {
  const auto r = run_dumbbell(base_config());
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.guard_events, 0u);

  auto cfg = base_config();
  cfg.check_invariants = false;
  EXPECT_EQ(run_dumbbell(cfg).invariant_checks, 0u);
}

TEST(DumbbellValidate, AcceptsWellFormedConfig) {
  EXPECT_EQ(base_config().validate(), "");
}

TEST(DumbbellValidate, MessagesNameFieldAndConstraint) {
  auto cfg = base_config();
  cfg.link_rate_bps = 0;
  EXPECT_NE(cfg.validate().find("link_rate_bps"), std::string::npos);
  EXPECT_NE(cfg.validate().find("must be finite and > 0"), std::string::npos);

  cfg = base_config();
  cfg.stats_start = cfg.duration + Time{seconds{1}};
  EXPECT_NE(cfg.validate().find("stats_start"), std::string::npos);

  cfg = base_config();
  cfg.aqm.max_classic_prob = 1.5;
  EXPECT_NE(cfg.validate().find("aqm.max_classic_prob"), std::string::npos);
}

TEST(DumbbellValidate, RejectsDegenerateAndNonFiniteFields) {
  auto cfg = base_config();
  cfg.link_rate_bps = std::numeric_limits<double>::infinity();
  EXPECT_NE(cfg.validate().find("link_rate_bps"), std::string::npos);

  cfg = base_config();
  cfg.aqm.alpha_hz = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(cfg.validate().find("aqm.alpha_hz"), std::string::npos);

  cfg = base_config();
  cfg.tcp_flows[0].max_cwnd = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(cfg.validate().find("max_cwnd"), std::string::npos);

  cfg = base_config();
  UdpFlowSpec udp;
  udp.rate_bps = 1e6;
  udp.packet_bytes = 0;
  cfg.udp_flows.push_back(udp);
  EXPECT_NE(cfg.validate().find("packet_bytes"), std::string::npos);
  cfg.udp_flows[0].packet_bytes = 100000;  // above the 65535 datagram cap
  EXPECT_NE(cfg.validate().find("packet_bytes"), std::string::npos);

  cfg = base_config();
  cfg.rate_changes.push_back({Time{seconds{5}},
                              std::numeric_limits<double>::quiet_NaN()});
  EXPECT_NE(cfg.validate().find("rate_changes"), std::string::npos);
}

TEST(DumbbellValidate, RejectsNonPositiveRecorderInterval) {
  telemetry::Recorder recorder{telemetry::RecorderConfig{
      ::testing::TempDir(), "validate_interval", from_millis(100)}};
  auto cfg = base_config();
  cfg.recorder = &recorder;
  EXPECT_EQ(cfg.validate(), "");  // a sane interval passes
  // A zero interval can only be checked through the config: the Sampler
  // constructor itself refuses it, which is the second line of defence.
  EXPECT_THROW(
      telemetry::Sampler(recorder.registry(), pi2::sim::Duration{0}),
      std::invalid_argument);
}

TEST(DumbbellValidate, FlowErrorsCarryTheFlowIndex) {
  auto cfg = base_config();
  TcpFlowSpec bad;
  bad.base_rtt = from_millis(0);
  cfg.tcp_flows.push_back(bad);
  const auto msg = cfg.validate();
  EXPECT_NE(msg.find("tcp_flows[1].base_rtt"), std::string::npos) << msg;
}

TEST(DumbbellValidate, FaultScheduleErrorsPropagate) {
  auto cfg = base_config();
  cfg.faults.rate_step(Time{seconds{5}}, 0.0);
  const auto msg = cfg.validate();
  EXPECT_NE(msg.find("fault event #0"), std::string::npos) << msg;
}

TEST(DumbbellValidate, RunDumbbellThrowsOnMalformedConfig) {
  auto cfg = base_config();
  cfg.buffer_packets = 0;
  try {
    run_dumbbell(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string{err.what()}.find("DumbbellConfig: buffer_packets"),
              std::string::npos)
        << err.what();
  }
}

TEST(AqmFactory, MakesEveryConfiguredType) {
  for (auto type : {AqmType::kFifo, AqmType::kPie, AqmType::kBarePie, AqmType::kPi,
                    AqmType::kPi2, AqmType::kCoupledPi2, AqmType::kRed,
                    AqmType::kCodel}) {
    AqmConfig cfg;
    cfg.type = type;
    EXPECT_NE(cfg.make(), nullptr) << to_string(type);
  }
}

TEST(AqmFactory, GainOverridesPropagate) {
  AqmConfig cfg;
  cfg.type = AqmType::kPi2;
  cfg.alpha_hz = 0.9;
  cfg.beta_hz = 9.0;
  auto aqm = cfg.make();
  auto* pi2_aqm = dynamic_cast<core::Pi2Aqm*>(aqm.get());
  ASSERT_NE(pi2_aqm, nullptr);
  EXPECT_DOUBLE_EQ(pi2_aqm->params().alpha_hz, 0.9);
  EXPECT_DOUBLE_EQ(pi2_aqm->params().beta_hz, 9.0);
}

TEST(AqmFactory, NamesAreUnique) {
  std::set<std::string_view> names;
  for (auto type : {AqmType::kFifo, AqmType::kPie, AqmType::kBarePie, AqmType::kPi,
                    AqmType::kPi2, AqmType::kCoupledPi2, AqmType::kRed,
                    AqmType::kCodel}) {
    names.insert(to_string(type));
  }
  EXPECT_EQ(names.size(), 8u);
}

}  // namespace
}  // namespace pi2::scenario
