#include "stats/percentile.hpp"

#include <gtest/gtest.h>

namespace pi2::stats {
namespace {

TEST(PercentileSampler, EmptyReturnsZero) {
  PercentileSampler s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(PercentileSampler, ExactQuantilesOnSmallSet) {
  PercentileSampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 0.5);
  EXPECT_NEAR(s.p25(), 25.75, 0.5);
}

TEST(PercentileSampler, QuantileClampsArgument) {
  PercentileSampler s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.5), 2.0);
}

TEST(PercentileSampler, MeanIsExactEvenPastCapacity) {
  PercentileSampler s{16};
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    s.add(i);
    sum += i;
  }
  EXPECT_EQ(s.count(), 1000);
  EXPECT_NEAR(s.mean(), sum / 1000, 1e-9);
}

TEST(PercentileSampler, ReservoirApproximatesQuantiles) {
  PercentileSampler s{1000, 123};
  for (int i = 0; i < 100000; ++i) s.add(i % 1000);
  // Uniform over [0, 999]: median ~ 500 within reservoir error.
  EXPECT_NEAR(s.median(), 500.0, 60.0);
  EXPECT_NEAR(s.p99(), 990.0, 30.0);
}

TEST(PercentileSampler, InterleavedAddAndQuery) {
  PercentileSampler s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  s.add(30.0);
  EXPECT_DOUBLE_EQ(s.median(), 20.0);
}

TEST(PercentileSampler, CdfAt) {
  PercentileSampler s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(100.0), 1.0);
}

TEST(PercentileSampler, CdfPointsAreMonotone) {
  PercentileSampler s;
  for (int i = 0; i < 500; ++i) s.add((i * 37) % 100);
  const auto pts = s.cdf_points(50);
  ASSERT_EQ(pts.size(), 50u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);   // values ascend
    EXPECT_GE(pts[i].second, pts[i - 1].second);  // fractions ascend
  }
  EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(PercentileSampler, CdfPointsEmptyCases) {
  PercentileSampler s;
  EXPECT_TRUE(s.cdf_points(10).empty());
  s.add(1.0);
  EXPECT_TRUE(s.cdf_points(1).empty());  // fewer than 2 points requested
}

TEST(PercentileSampler, ZeroCapacityIsUsable) {
  PercentileSampler s{0};
  s.add(1.0);
  s.add(2.0);
  EXPECT_EQ(s.count(), 2);
  EXPECT_GT(s.median(), 0.0);
}

}  // namespace
}  // namespace pi2::stats
