// Recovery analyzer: the fig_response settle criterion generalized to a
// list of fault windows, on hand-built series where every score is known.
#include "stats/recovery.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/time.hpp"
#include "stats/time_series.hpp"

namespace pi2::stats {
namespace {

using pi2::sim::from_seconds;
using pi2::sim::Time;

/// qdelay sampled every 0.5s over [0, duration]; `spike(t)` gives the value.
template <typename Fn>
TimeSeries sampled(double duration_s, Fn&& value_at) {
  TimeSeries series;
  for (double t = 0.0; t <= duration_s + 1e-9; t += 0.5) {
    series.add(from_seconds(t), value_at(t));
  }
  return series;
}

RecoveryOptions options(double duration_s) {
  RecoveryOptions opts;
  opts.band_ms = 40.0;
  opts.hold_s = 1.0;
  opts.analysis_start_s = 0.0;
  opts.duration_s = duration_s;
  return opts;
}

TEST(Recovery, NoWindowsIsUnanalyzed) {
  const TimeSeries series = sampled(10.0, [](double) { return 10.0; });
  const std::vector<Time> violations = {from_seconds(3.0), from_seconds(7.0)};
  const ResilienceReport report =
      analyze_recovery(series, {}, violations, options(10.0));
  EXPECT_FALSE(report.analyzed);
  EXPECT_EQ(report.windows, 0u);
  // Without windows every violation is quiet-time.
  EXPECT_EQ(report.violations_in_window, 0u);
  EXPECT_EQ(report.violations_outside, 2u);
}

TEST(Recovery, ScoresASingleWindow) {
  // Flat 10ms except a 100ms excursion over [6, 8): the first settle point
  // after the window [5, 6] is the t=8 sample, so recovery = 2s.
  const TimeSeries series = sampled(20.0, [](double t) {
    return t >= 6.0 && t < 8.0 ? 100.0 : 10.0;
  });
  const std::vector<RecoveryWindow> windows = {{5.0, 6.0}};
  const ResilienceReport report =
      analyze_recovery(series, windows, {}, options(20.0));
  EXPECT_TRUE(report.analyzed);
  EXPECT_EQ(report.windows, 1u);
  EXPECT_EQ(report.recovered_windows, 1u);
  ASSERT_EQ(report.recovery_s.size(), 1u);
  EXPECT_DOUBLE_EQ(report.recovery_s[0], 2.0);
  EXPECT_DOUBLE_EQ(report.worst_recovery_s, 2.0);
  EXPECT_DOUBLE_EQ(report.mean_recovery_s, 2.0);
  EXPECT_DOUBLE_EQ(report.peak_qdelay_ms, 100.0);
  // Pre-fault steady state over [0, 5), post-fault from quiet_from = 9.
  EXPECT_DOUBLE_EQ(report.pre_fault_mean_qdelay_ms, 10.0);
  EXPECT_DOUBLE_EQ(report.post_fault_mean_qdelay_ms, 10.0);
  EXPECT_DOUBLE_EQ(report.post_fault_delta_ms, 0.0);
}

TEST(Recovery, NeverSettlingIsMinusOneAndSticky) {
  // The excursion persists to the end of the run: no settle point exists.
  const TimeSeries series = sampled(20.0, [](double t) {
    return t >= 6.0 ? 100.0 : 10.0;
  });
  const std::vector<RecoveryWindow> windows = {{5.0, 6.0}};
  const ResilienceReport report =
      analyze_recovery(series, windows, {}, options(20.0));
  EXPECT_EQ(report.recovered_windows, 0u);
  ASSERT_EQ(report.recovery_s.size(), 1u);
  EXPECT_DOUBLE_EQ(report.recovery_s[0], -1.0);
  EXPECT_DOUBLE_EQ(report.worst_recovery_s, -1.0);
  EXPECT_DOUBLE_EQ(report.mean_recovery_s, 0.0);
}

TEST(Recovery, NextWindowBoundsTheSettleScan) {
  // Window 0's transient only clears after window 1 starts, so window 0
  // never reconverged within its own span — and the sticky -1 worst-case
  // survives window 1 recovering cleanly.
  const TimeSeries series = sampled(20.0, [](double t) {
    return t >= 3.0 && t < 5.5 ? 100.0 : 10.0;
  });
  const std::vector<RecoveryWindow> windows = {{2.0, 3.0}, {5.0, 6.0}};
  const ResilienceReport report =
      analyze_recovery(series, windows, {}, options(20.0));
  EXPECT_EQ(report.windows, 2u);
  EXPECT_EQ(report.recovered_windows, 1u);
  ASSERT_EQ(report.recovery_s.size(), 2u);
  EXPECT_DOUBLE_EQ(report.recovery_s[0], -1.0);
  EXPECT_DOUBLE_EQ(report.recovery_s[1], 0.0);
  EXPECT_DOUBLE_EQ(report.worst_recovery_s, -1.0);
  EXPECT_DOUBLE_EQ(report.mean_recovery_s, 0.0);
}

TEST(Recovery, HoldMustFitBeforeTheRunEnds) {
  // In-band from t=19.8 on, but only 0.2s remain before duration 20: the
  // hold interval cannot complete, so the window counts as unsettled.
  const TimeSeries series = sampled(20.0, [](double t) {
    return t >= 6.0 && t < 19.8 ? 100.0 : 10.0;
  });
  const std::vector<RecoveryWindow> windows = {{5.0, 6.0}};
  const ResilienceReport report =
      analyze_recovery(series, windows, {}, options(20.0));
  EXPECT_EQ(report.recovered_windows, 0u);
  EXPECT_DOUBLE_EQ(report.worst_recovery_s, -1.0);
}

TEST(Recovery, ViolationsSplitAcrossWindowAndQuietTime) {
  // Same shape as ScoresASingleWindow: quiet_from = 6 + 2 + 1 = 9.
  const TimeSeries series = sampled(20.0, [](double t) {
    return t >= 6.0 && t < 8.0 ? 100.0 : 10.0;
  });
  const std::vector<RecoveryWindow> windows = {{5.0, 6.0}};
  const std::vector<Time> violations = {
      from_seconds(5.5),   // inside the window itself
      from_seconds(8.5),   // recovery transient, before quiet_from
      from_seconds(15.0),  // quiet time — a real failure
      from_seconds(2.0),   // before any window — also quiet time
  };
  const ResilienceReport report =
      analyze_recovery(series, windows, violations, options(20.0));
  EXPECT_EQ(report.violations_in_window, 2u);
  EXPECT_EQ(report.violations_outside, 2u);
}

TEST(Recovery, UnsettledWindowExcusesViolationsUntilItsLimit) {
  const TimeSeries series = sampled(20.0, [](double t) {
    return t >= 6.0 ? 100.0 : 10.0;
  });
  const std::vector<RecoveryWindow> windows = {{5.0, 6.0}};
  // Never settles, so quiet_from extends to the run end: every violation at
  // or after the window start is excused.
  const std::vector<Time> violations = {from_seconds(18.0), from_seconds(1.0)};
  const ResilienceReport report =
      analyze_recovery(series, windows, violations, options(20.0));
  EXPECT_EQ(report.violations_in_window, 1u);
  EXPECT_EQ(report.violations_outside, 1u);
}

TEST(Recovery, ZeroWidthWindowScoresFromTheEventInstant) {
  // An instantaneous event (rate step) at t=5: the excursion runs [5, 7),
  // first settle sample at t=7 → recovery 2s measured from the event.
  const TimeSeries series = sampled(20.0, [](double t) {
    return t >= 5.0 && t < 7.0 ? 100.0 : 10.0;
  });
  const std::vector<RecoveryWindow> windows = {{5.0, 5.0}};
  const ResilienceReport report =
      analyze_recovery(series, windows, {}, options(20.0));
  EXPECT_EQ(report.recovered_windows, 1u);
  ASSERT_EQ(report.recovery_s.size(), 1u);
  EXPECT_DOUBLE_EQ(report.recovery_s[0], 2.0);
}

}  // namespace
}  // namespace pi2::stats
