#include "stats/time_series.hpp"

#include <gtest/gtest.h>

namespace pi2::stats {
namespace {

using pi2::sim::from_seconds;
using pi2::sim::Time;

Time at_s(double s) { return from_seconds(s); }

TEST(TimeSeries, StartsEmpty) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0u);
}

TEST(TimeSeries, StoresPointsInOrder) {
  TimeSeries ts;
  ts.add(at_s(1), 10.0);
  ts.add(at_s(2), 20.0);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.points()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(ts.points()[1].value, 20.0);
}

TEST(TimeSeries, SampleExactlyOnBinEdgeBelongsToTheLaterBin) {
  TimeSeries ts;
  ts.add(at_s(0.5), 10.0);
  ts.add(at_s(1.0), 30.0);  // exactly on the [0,1)/[1,2) boundary
  const auto bins = ts.binned_mean(from_seconds(1.0), at_s(0), at_s(2));
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].second, 10.0);
  EXPECT_DOUBLE_EQ(bins[1].second, 30.0);
}

TEST(TimeSeries, SampleExactlyAtStartIsIncludedAndAtStopExcluded) {
  TimeSeries ts;
  ts.add(at_s(1.0), 5.0);
  ts.add(at_s(2.0), 50.0);
  const auto bins = ts.binned_mean(from_seconds(1.0), at_s(1), at_s(2));
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[0].second, 5.0);  // the t=2 point is outside [1, 2)
  EXPECT_DOUBLE_EQ(ts.mean_over(at_s(1), at_s(2)), 5.0);
}

TEST(TimeSeries, BinnedMeanAveragesWithinBins) {
  TimeSeries ts;
  ts.add(at_s(0.1), 10.0);
  ts.add(at_s(0.2), 30.0);
  ts.add(at_s(1.5), 50.0);
  const auto bins = ts.binned_mean(from_seconds(1.0), at_s(0), at_s(2));
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].second, 20.0);
  EXPECT_DOUBLE_EQ(bins[1].second, 50.0);
  EXPECT_DOUBLE_EQ(bins[0].first, 0.5);  // bin centre
  EXPECT_DOUBLE_EQ(bins[1].first, 1.5);
}

TEST(TimeSeries, BinnedMeanHoldsLastValueThroughEmptyBins) {
  TimeSeries ts;
  ts.add(at_s(0.5), 42.0);
  const auto bins = ts.binned_mean(from_seconds(1.0), at_s(0), at_s(3));
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0].second, 42.0);
  EXPECT_DOUBLE_EQ(bins[1].second, 42.0);  // sample-and-hold
  EXPECT_DOUBLE_EQ(bins[2].second, 42.0);
}

TEST(TimeSeries, BinnedMaxPicksPeaks) {
  TimeSeries ts;
  ts.add(at_s(0.1), 5.0);
  ts.add(at_s(0.9), 80.0);
  ts.add(at_s(1.1), 7.0);
  const auto bins = ts.binned_max(from_seconds(1.0), at_s(0), at_s(2));
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0].second, 80.0);
  EXPECT_DOUBLE_EQ(bins[1].second, 7.0);
}

TEST(TimeSeries, BinnedRejectsDegenerateArgs) {
  TimeSeries ts;
  ts.add(at_s(1), 1.0);
  EXPECT_TRUE(ts.binned_mean(from_seconds(0), at_s(0), at_s(2)).empty());
  EXPECT_TRUE(ts.binned_mean(from_seconds(1), at_s(2), at_s(2)).empty());
}

TEST(TimeSeries, MeanOverWindow) {
  TimeSeries ts;
  ts.add(at_s(1), 10.0);
  ts.add(at_s(2), 20.0);
  ts.add(at_s(3), 90.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(at_s(0.5), at_s(2.5)), 15.0);
  EXPECT_DOUBLE_EQ(ts.mean_over(at_s(5), at_s(6)), 0.0);
}

TEST(TimeSeries, MaxOverWindow) {
  TimeSeries ts;
  ts.add(at_s(1), 10.0);
  ts.add(at_s(2), 90.0);
  ts.add(at_s(3), 20.0);
  EXPECT_DOUBLE_EQ(ts.max_over(at_s(0), at_s(4)), 90.0);
  EXPECT_DOUBLE_EQ(ts.max_over(at_s(2.5), at_s(4)), 20.0);
}

TEST(TimeWeightedMean, ConstantSignal) {
  TimeWeightedMean m;
  m.update(at_s(0), 5.0);
  EXPECT_DOUBLE_EQ(m.mean_until(at_s(10)), 5.0);
}

TEST(TimeWeightedMean, StepSignalWeightsByDuration) {
  TimeWeightedMean m;
  m.update(at_s(0), 0.0);
  m.update(at_s(9), 100.0);  // 0 for 9s, then 100 for 1s
  EXPECT_DOUBLE_EQ(m.mean_until(at_s(10)), 10.0);
}

TEST(TimeWeightedMean, BeforeFirstSampleIsZero) {
  TimeWeightedMean m;
  EXPECT_DOUBLE_EQ(m.mean_until(at_s(1)), 0.0);
  m.update(at_s(5), 7.0);
  EXPECT_DOUBLE_EQ(m.mean_until(at_s(5)), 0.0);
}

}  // namespace
}  // namespace pi2::stats
