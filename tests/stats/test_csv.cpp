#include "stats/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pi2::stats {
namespace {

using pi2::sim::from_seconds;

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "pi2_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndAlignedColumns) {
  TimeSeries a;
  TimeSeries b;
  a.add(from_seconds(0.5), 1.0);
  a.add(from_seconds(1.5), 3.0);
  b.add(from_seconds(0.5), 10.0);
  ASSERT_TRUE(write_series_csv(path_, {"a", "b"}, {&a, &b}, from_seconds(1.0),
                               pi2::sim::kTimeZero, from_seconds(2.0)));
  const std::string text = slurp(path_);
  EXPECT_NE(text.find("t_s,a,b"), std::string::npos);
  EXPECT_NE(text.find("0.500000,1,10"), std::string::npos);
  EXPECT_NE(text.find("1.500000,3,10"), std::string::npos);  // b held
}

TEST_F(CsvTest, RejectsMismatchedNames) {
  TimeSeries a;
  EXPECT_FALSE(write_series_csv(path_, {"a", "b"}, {&a}, from_seconds(1.0),
                                pi2::sim::kTimeZero, from_seconds(1.0)));
}

TEST_F(CsvTest, RejectsUnwritablePath) {
  TimeSeries a;
  a.add(from_seconds(0.5), 1.0);
  EXPECT_FALSE(write_series_csv("/nonexistent-dir/x.csv", {"a"}, {&a},
                                from_seconds(1.0), pi2::sim::kTimeZero,
                                from_seconds(1.0)));
}

TEST_F(CsvTest, CdfCsvIsMonotone) {
  PercentileSampler s;
  for (int i = 0; i < 500; ++i) s.add((i * 17) % 100);
  ASSERT_TRUE(write_cdf_csv(path_, s, 50));
  std::ifstream in{path_};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "value,fraction");
  double prev_value = -1e18;
  double prev_frac = -1.0;
  int rows = 0;
  while (std::getline(in, line)) {
    double value = 0.0;
    double frac = 0.0;
    ASSERT_EQ(std::sscanf(line.c_str(), "%lf,%lf", &value, &frac), 2);
    EXPECT_GE(value, prev_value);
    EXPECT_GE(frac, prev_frac);
    prev_value = value;
    prev_frac = frac;
    ++rows;
  }
  EXPECT_EQ(rows, 50);
}

}  // namespace
}  // namespace pi2::stats
