#include "stats/online_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pi2::stats {
namespace {

TEST(OnlineStats, EmptyIsAllZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squares = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStats, MinMaxTrackExtremes) {
  OnlineStats s;
  for (double x : {3.0, -1.0, 7.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(OnlineStats, SumAccumulates) {
  OnlineStats s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.sum(), 55.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a;
  OnlineStats b;
  b.add(3.0);
  a.merge(b);  // empty <- non-empty
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  OnlineStats c;
  a.merge(c);  // non-empty <- empty
  EXPECT_EQ(a.count(), 1);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  // Naive sum-of-squares would lose precision here; Welford must not.
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25 * 1000 / 999, 1e-6);
}

}  // namespace
}  // namespace pi2::stats
