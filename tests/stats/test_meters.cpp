#include "stats/meters.hpp"

#include <gtest/gtest.h>

namespace pi2::stats {
namespace {

using pi2::sim::from_seconds;
using pi2::sim::Time;

Time at_s(double s) { return from_seconds(s); }

TEST(RateMeter, ConvertsBytesPerWindowToMbps) {
  RateMeter m{std::chrono::seconds{1}};
  // 1.25 MB in one second = 10 Mb/s.
  m.add_bytes(at_s(0.2), 1250000 / 2);
  m.add_bytes(at_s(0.7), 1250000 / 2);
  m.flush(at_s(2.0));
  ASSERT_GE(m.series().size(), 1u);
  EXPECT_NEAR(m.series().points()[0].value, 10.0, 1e-9);
}

TEST(RateMeter, EmptyWindowsProduceZeroSamples) {
  RateMeter m{std::chrono::seconds{1}};
  m.add_bytes(at_s(0.5), 1000);
  m.flush(at_s(3.5));
  ASSERT_EQ(m.series().size(), 3u);
  EXPECT_GT(m.series().points()[0].value, 0.0);
  EXPECT_DOUBLE_EQ(m.series().points()[1].value, 0.0);
  EXPECT_DOUBLE_EQ(m.series().points()[2].value, 0.0);
}

TEST(RateMeter, TotalBytesAccumulate) {
  RateMeter m;
  m.add_bytes(at_s(0.1), 100);
  m.add_bytes(at_s(5.0), 200);
  EXPECT_EQ(m.total_bytes(), 300);
}

TEST(UtilizationMeter, FullyBusyWindowIsOne) {
  UtilizationMeter m{std::chrono::seconds{1}};
  m.add_busy(at_s(0.0), at_s(1.0));
  m.flush(at_s(2.0));
  ASSERT_GE(m.series().size(), 1u);
  EXPECT_NEAR(m.series().points()[0].value, 1.0, 1e-9);
}

TEST(UtilizationMeter, HalfBusyWindowIsHalf) {
  UtilizationMeter m{std::chrono::seconds{1}};
  m.add_busy(at_s(0.25), at_s(0.75));
  m.flush(at_s(2.0));
  EXPECT_NEAR(m.series().points()[0].value, 0.5, 1e-9);
}

TEST(UtilizationMeter, BusyIntervalSpanningWindows) {
  UtilizationMeter m{std::chrono::seconds{1}};
  m.add_busy(at_s(0.5), at_s(2.5));
  m.flush(at_s(3.0));
  ASSERT_GE(m.series().size(), 2u);
  EXPECT_NEAR(m.series().points()[0].value, 0.5, 1e-9);
  EXPECT_NEAR(m.series().points()[1].value, 1.0, 1e-9);
}

TEST(UtilizationMeter, TotalBusySecondsAccumulate) {
  UtilizationMeter m;
  m.add_busy(at_s(0), at_s(1));
  m.add_busy(at_s(2), at_s(2.5));
  EXPECT_NEAR(m.total_busy_seconds(), 1.5, 1e-9);
}

TEST(UtilizationMeter, IgnoresEmptyIntervals) {
  UtilizationMeter m;
  m.add_busy(at_s(1), at_s(1));
  m.add_busy(at_s(2), at_s(1));  // reversed
  EXPECT_DOUBLE_EQ(m.total_busy_seconds(), 0.0);
}

TEST(RateMeter, SampleExactlyOnWindowEdgeOpensTheNextWindow) {
  RateMeter m{std::chrono::seconds{1}};
  m.add_bytes(at_s(0.5), 125000);  // window [0, 1)
  m.add_bytes(at_s(1.0), 250000);  // exactly on the edge: belongs to [1, 2)
  m.flush(at_s(2.0));
  ASSERT_EQ(m.series().size(), 2u);
  EXPECT_NEAR(m.series().points()[0].value, 1.0, 1e-9);  // 125 kB -> 1 Mb/s
  EXPECT_NEAR(m.series().points()[1].value, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(pi2::sim::to_seconds(m.series().points()[0].t), 1.0);
}

TEST(RateMeter, OutOfOrderFlushIsANoOp) {
  RateMeter m{std::chrono::seconds{1}};
  m.add_bytes(at_s(2.5), 1000);
  m.flush(at_s(1.0));  // earlier than the last event: nothing to close
  EXPECT_EQ(m.series().size(), 0u);
  m.flush(at_s(3.0));  // forward flush still closes [2, 3) exactly once
  ASSERT_EQ(m.series().size(), 1u);
  EXPECT_GT(m.series().points()[0].value, 0.0);
  EXPECT_EQ(m.total_bytes(), 1000);
}

TEST(UtilizationMeter, BusyIntervalEndingOnWindowEdge) {
  UtilizationMeter m{std::chrono::seconds{1}};
  m.add_busy(at_s(0.0), at_s(1.0));  // exactly fills [0, 1)
  m.flush(at_s(2.0));
  ASSERT_EQ(m.series().size(), 2u);
  EXPECT_NEAR(m.series().points()[0].value, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.series().points()[1].value, 0.0);  // nothing leaked over
}

}  // namespace
}  // namespace pi2::stats
