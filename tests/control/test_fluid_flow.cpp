// FluidFlowEnsemble: the live-coupled Appendix B window ODEs. The step-input
// tests drive the ensemble with constant probability sources and require the
// window to converge to the closed-form fixed point — W = sqrt(2/p) for the
// Classic law (15), W = 2/p' for the Scalable law (22).
#include "control/fluid_flow.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sim/simulator.hpp"

namespace pi2::control {
namespace {

using pi2::sim::Simulator;
using pi2::sim::from_seconds;

FluidFlowEnsemble::Sources constant_sources(double p_classic,
                                            double p_scalable,
                                            double qdelay_s = 0.0) {
  FluidFlowEnsemble::Sources s;
  s.classic_probability = [p_classic] { return p_classic; };
  s.scalable_probability = [p_scalable] { return p_scalable; };
  s.queue_delay_s = [qdelay_s] { return qdelay_s; };
  return s;
}

TEST(FluidFlowEnsemble, FixedPointWindowClosedForms) {
  EXPECT_DOUBLE_EQ(
      FluidFlowEnsemble::fixed_point_window(FluidSignal::kClassic, 0.02),
      std::sqrt(2.0 / 0.02));
  EXPECT_DOUBLE_EQ(
      FluidFlowEnsemble::fixed_point_window(FluidSignal::kScalable, 0.1),
      2.0 / 0.1);
}

TEST(FluidFlowEnsemble, ClassicStepInputConvergesToFixedPoint) {
  Simulator sim;
  FluidFlowEnsemble ensemble{sim, {}};
  FluidFlowSpec spec;
  spec.signal = FluidSignal::kClassic;
  spec.count = 100;
  spec.base_rtt_s = 0.05;
  const std::size_t idx = ensemble.add_spec(spec);

  const double p = 0.02;
  ensemble.set_sources(constant_sources(p, p, 0.0));
  ensemble.start();
  sim.run_until(from_seconds(60.0));

  const double expected =
      FluidFlowEnsemble::fixed_point_window(FluidSignal::kClassic, p);
  EXPECT_NEAR(ensemble.window(idx), expected, 0.05 * expected);
  // Aggregate demand at the fixed point: N·W·mss·8/R.
  const double rate = spec.count * expected * spec.mss_bytes * 8.0 /
                      spec.base_rtt_s;
  EXPECT_NEAR(ensemble.aggregate_rate_bps(), rate, 0.05 * rate);
}

TEST(FluidFlowEnsemble, ScalableStepInputConvergesToFixedPoint) {
  Simulator sim;
  FluidFlowEnsemble ensemble{sim, {}};
  FluidFlowSpec spec;
  spec.signal = FluidSignal::kScalable;
  spec.count = 10;
  spec.base_rtt_s = 0.02;
  const std::size_t idx = ensemble.add_spec(spec);

  const double p_mark = 0.08;
  ensemble.set_sources(constant_sources(0.0, p_mark, 0.0));
  ensemble.start();
  sim.run_until(from_seconds(30.0));

  const double expected =
      FluidFlowEnsemble::fixed_point_window(FluidSignal::kScalable, p_mark);
  EXPECT_NEAR(ensemble.window(idx), expected, 0.05 * expected);
}

TEST(FluidFlowEnsemble, WindowReactsOnlyAfterTheFeedbackLag) {
  // The decrease term uses W(t−R)·p(t−R): a probability step needs ~one RTT
  // in the history ring before it can bend the window. Until then the
  // window keeps growing at the additive 1/R rate.
  Simulator sim;
  FluidFlowEnsemble ensemble{sim, {}};
  FluidFlowSpec spec;
  spec.signal = FluidSignal::kClassic;
  spec.count = 1;
  spec.base_rtt_s = 0.2;
  const std::size_t idx = ensemble.add_spec(spec);

  double p = 0.0;
  FluidFlowEnsemble::Sources sources;
  sources.classic_probability = [&p] { return p; };
  sources.scalable_probability = [&p] { return p; };
  sources.queue_delay_s = [] { return 0.0; };
  ensemble.set_sources(std::move(sources));
  ensemble.start();

  sim.run_until(from_seconds(2.0));
  const double w_before = ensemble.window(idx);
  p = 1.0;  // saturating step
  sim.run_until(from_seconds(2.0 + spec.base_rtt_s / 2.0));
  // Half an RTT after the step the lagged probability is still 0.
  EXPECT_GT(ensemble.window(idx), w_before);
  sim.run_until(from_seconds(2.0 + 5.0 * spec.base_rtt_s));
  // Several RTTs later the saturating signal has crushed the window.
  EXPECT_LT(ensemble.window(idx), w_before);
}

TEST(FluidFlowEnsemble, StartStopGateTheAggregate) {
  Simulator sim;
  FluidFlowEnsemble ensemble{sim, {}};
  FluidFlowSpec spec;
  spec.count = 50;
  spec.start_s = 1.0;
  spec.stop_s = 2.0;
  ensemble.add_spec(spec);
  ensemble.set_sources(constant_sources(0.01, 0.01, 0.0));
  ensemble.start();

  sim.run_until(from_seconds(0.5));
  EXPECT_EQ(ensemble.aggregate_rate_bps(), 0.0);
  EXPECT_EQ(ensemble.active_flow_count(), 0.0);
  sim.run_until(from_seconds(1.5));
  EXPECT_GT(ensemble.aggregate_rate_bps(), 0.0);
  EXPECT_EQ(ensemble.active_flow_count(), 50.0);
  sim.run_until(from_seconds(2.5));
  EXPECT_EQ(ensemble.aggregate_rate_bps(), 0.0);
  EXPECT_EQ(ensemble.active_flow_count(), 0.0);
}

TEST(FluidFlowEnsemble, QueueDelayLengthensTheEffectiveRtt) {
  // R(t) = base + qdelay: with a queue standing, the same window yields a
  // lower arrival rate.
  Simulator sim;
  FluidFlowEnsemble no_queue{sim, {}};
  FluidFlowSpec spec;
  spec.count = 10;
  spec.base_rtt_s = 0.05;
  no_queue.add_spec(spec);
  no_queue.set_sources(constant_sources(0.02, 0.02, 0.0));
  no_queue.start();

  Simulator sim2;
  FluidFlowEnsemble queued{sim2, {}};
  queued.add_spec(spec);
  queued.set_sources(constant_sources(0.02, 0.02, 0.05));
  queued.start();

  sim.run_until(from_seconds(30.0));
  sim2.run_until(from_seconds(30.0));
  EXPECT_GT(no_queue.aggregate_rate_bps(), queued.aggregate_rate_bps());
}

TEST(FluidFlowEnsemble, TicksAreIndependentOfFlowCount) {
  // The whole point of the fluid tier: one event per tick, whatever N is.
  for (const double n : {1.0, 1e3, 1e6}) {
    Simulator sim;
    FluidFlowEnsemble ensemble{sim, {}};
    FluidFlowSpec spec;
    spec.count = n;
    ensemble.add_spec(spec);
    ensemble.set_sources(constant_sources(0.01, 0.01, 0.0));
    ensemble.start();
    sim.run_until(from_seconds(1.0));
    EXPECT_NEAR(static_cast<double>(ensemble.ticks()), 1000.0, 2.0)
        << "N=" << n;
    EXPECT_NEAR(static_cast<double>(sim.events_executed()), 1000.0, 2.0)
        << "N=" << n;
  }
}

TEST(FluidFlowEnsemble, StateBytesPerSpecAmortizeOverCount) {
  Simulator sim;
  FluidFlowEnsemble ensemble{sim, {}};
  FluidFlowSpec spec;
  spec.count = 1e5;
  ensemble.add_spec(spec);
  const double per_flow =
      static_cast<double>(ensemble.state_bytes_per_spec()) / spec.count;
  // History rings: 3 doubles × (max_lag/dt + 1) ≈ 48 KB per spec — under a
  // byte per modelled flow at N = 10⁵.
  EXPECT_LT(per_flow, 1.0);
}

TEST(FluidFlowEnsemble, RejectsInvalidSpecsAndConfig) {
  Simulator sim;
  EXPECT_THROW((FluidFlowEnsemble{sim, {.dt_s = 0.0}}), std::invalid_argument);
  EXPECT_THROW((FluidFlowEnsemble{sim, {.dt_s = 1e-3, .max_lag_s = 0.0}}),
               std::invalid_argument);

  FluidFlowEnsemble ensemble{sim, {}};
  FluidFlowSpec bad;
  bad.count = -1.0;
  EXPECT_THROW(ensemble.add_spec(bad), std::invalid_argument);
  bad = {};
  bad.base_rtt_s = 0.0;
  EXPECT_THROW(ensemble.add_spec(bad), std::invalid_argument);
  bad = {};
  bad.mss_bytes = 0.0;
  EXPECT_THROW(ensemble.add_spec(bad), std::invalid_argument);
}

}  // namespace
}  // namespace pi2::control
