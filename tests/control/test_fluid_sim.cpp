#include "control/fluid_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pi2::control {
namespace {

FluidConfig base_config(LoopType type) {
  FluidConfig cfg;
  cfg.type = type;
  cfg.n_flows = 5;
  cfg.capacity_pps = 10e6 / 8.0 / 1500.0;  // 10 Mb/s
  cfg.base_rtt_s = 0.1;
  cfg.duration_s = 60.0;
  switch (type) {
    case LoopType::kRenoP:
      cfg.gains = {0.125, 1.25, 0.032};
      break;
    case LoopType::kRenoPSquared:
      cfg.gains = {0.3125, 3.125, 0.032};
      break;
    case LoopType::kScalableP:
      cfg.gains = {0.625, 6.25, 0.032};
      break;
  }
  return cfg;
}

TEST(FluidSim, Pi2ConvergesToTargetDelay) {
  const auto trace = simulate_fluid(base_config(LoopType::kRenoPSquared));
  EXPECT_NEAR(trace.settled_qdelay_s(10.0), 0.02, 0.005);
}

TEST(FluidSim, Pi2WindowMatchesOperatingPoint) {
  // W0 = C R0 / N with R0 = base + target.
  const auto cfg = base_config(LoopType::kRenoPSquared);
  const auto trace = simulate_fluid(cfg);
  const double r0 = cfg.base_rtt_s + 0.02;
  const double w0 = cfg.capacity_pps * r0 / cfg.n_flows;
  double w_end = trace.window.back();
  EXPECT_NEAR(w_end / w0, 1.0, 0.15);
}

TEST(FluidSim, Pi2SteadyProbabilityObeysSquareRootLaw) {
  // In the fluid model W^2 p'^2 = 2 at equilibrium (eq (19)).
  const auto cfg = base_config(LoopType::kRenoPSquared);
  const auto trace = simulate_fluid(cfg);
  const double w = trace.window.back();
  const double p_prime = trace.prob.back();
  EXPECT_NEAR(w * p_prime, std::sqrt(2.0), 0.25);
}

TEST(FluidSim, ScalableConvergesWithDoubledGains) {
  const auto trace = simulate_fluid(base_config(LoopType::kScalableP));
  EXPECT_NEAR(trace.settled_qdelay_s(10.0), 0.02, 0.005);
  EXPECT_LT(trace.residual_oscillation_s(10.0), 0.01);
}

TEST(FluidSim, ScalableSteadyStateObeysW_Equals_2_Over_P) {
  const auto trace = simulate_fluid(base_config(LoopType::kScalableP));
  const double w = trace.window.back();
  const double p = trace.prob.back();
  EXPECT_NEAR(w * p, 2.0, 0.3);
}

TEST(FluidSim, FixedGainPiOscillatesAtLightLoadPi2DoesNot) {
  // The Figure 6 mechanism in the fluid domain. Operating point p ~ 1%
  // (7 flows at 10 Mb/s): with the same 2.5x constant gains the direct-p
  // PI loop has a negative gain margin there while PI2 (p' ~ 10%) has a
  // comfortable one; the time-domain residuals must reflect that.
  auto pi_cfg = base_config(LoopType::kRenoP);
  pi_cfg.n_flows = 7;
  pi_cfg.gains = {0.3125, 3.125, 0.032};  // no autotune, no square
  const auto pi_trace = simulate_fluid(pi_cfg);

  auto pi2_cfg = base_config(LoopType::kRenoPSquared);
  pi2_cfg.n_flows = 7;
  const auto pi2_trace = simulate_fluid(pi2_cfg);

  EXPECT_GT(pi_trace.residual_oscillation_s(20.0),
            3.0 * pi2_trace.residual_oscillation_s(20.0));
}

TEST(FluidSim, LoadStepRecovers) {
  auto cfg = base_config(LoopType::kRenoPSquared);
  cfg.n_step_at_s = 30.0;
  cfg.n_step_to = 25.0;
  cfg.duration_s = 80.0;
  const auto trace = simulate_fluid(cfg);
  // Overshoot right after the step, then convergence back to target.
  EXPECT_GT(trace.peak_qdelay_s(30.0), 0.025);
  EXPECT_NEAR(trace.settled_qdelay_s(10.0), 0.02, 0.006);
}

TEST(FluidSim, ProbabilityCapHolds) {
  auto cfg = base_config(LoopType::kRenoPSquared);
  cfg.max_prob = 0.5;  // the PI2 overload cap on p'
  cfg.n_flows = 5000;  // gross overload
  cfg.duration_s = 20.0;
  const auto trace = simulate_fluid(cfg);
  for (const double p : trace.prob) EXPECT_LE(p, 0.5 + 1e-12);
}

TEST(FluidSim, TraceMetricsBehave) {
  FluidTrace trace;
  EXPECT_DOUBLE_EQ(trace.peak_qdelay_s(), 0.0);
  EXPECT_DOUBLE_EQ(trace.settled_qdelay_s(1.0), 0.0);
  trace.t_s = {0.0, 1.0, 2.0};
  trace.qdelay_s = {0.1, 0.3, 0.2};
  trace.window = {1, 1, 1};
  trace.prob = {0, 0, 0};
  EXPECT_DOUBLE_EQ(trace.peak_qdelay_s(0.5), 0.3);
  EXPECT_DOUBLE_EQ(trace.residual_oscillation_s(1.5), 0.1);
}

TEST(FluidSim, AgreementWithFrequencyDomain) {
  // Where margins() says the loop is unstable, the time domain must show
  // large sustained oscillation; where stable, small. One point each.
  auto unstable = base_config(LoopType::kRenoP);
  unstable.n_flows = 2;
  unstable.capacity_pps = 100e6 / 8.0 / 1500.0;  // p ~ 1e-4: GM < 0 for tune=1
  unstable.gains = {0.125, 1.25, 0.032};
  const auto trace_u = simulate_fluid(unstable);

  auto stable = base_config(LoopType::kRenoPSquared);
  const auto trace_s = simulate_fluid(stable);

  EXPECT_GT(trace_u.residual_oscillation_s(20.0), 0.005);
  EXPECT_LT(trace_s.residual_oscillation_s(20.0), 0.01);
}

}  // namespace
}  // namespace pi2::control
