#include "control/fluid_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pi2::control {
namespace {

PiGains pie_gains(double tune = 1.0) { return {0.125 * tune, 1.25 * tune, 0.032}; }
PiGains pi2_gains() { return {0.3125, 3.125, 0.032}; }
PiGains scal_gains() { return {0.625, 6.25, 0.032}; }

TEST(FluidModel, OperatingPointWindows) {
  // W0^2 p = 2 for Reno-on-p; W0^2 p'^2 = 2 for Reno-on-p'^2; W0 p' = 2
  // for the scalable control.
  LoopModel reno{LoopType::kRenoP, 0.02, 0.1, pie_gains()};
  EXPECT_NEAR(reno.w0() * reno.w0() * 0.02, 2.0, 1e-9);
  LoopModel pi2m{LoopType::kRenoPSquared, 0.1, 0.1, pi2_gains()};
  EXPECT_NEAR(pi2m.w0() * pi2m.w0() * 0.1 * 0.1, 2.0, 1e-9);
  LoopModel scal{LoopType::kScalableP, 0.1, 0.1, scal_gains()};
  EXPECT_NEAR(scal.w0() * 0.1, 2.0, 1e-9);
}

TEST(FluidModel, LowFrequencyGainDominatedByIntegrator) {
  LoopModel m{LoopType::kRenoPSquared, 0.1, 0.1, pi2_gains()};
  // |L| ~ 1/omega at low omega: one decade of omega = one decade of gain.
  const double g1 = std::abs(m.eval(1e-4));
  const double g2 = std::abs(m.eval(1e-3));
  EXPECT_NEAR(g1 / g2, 10.0, 0.5);
}

TEST(FluidModel, MarginsExistForSaneConfigurations) {
  for (double p : {0.01, 0.1, 0.5}) {
    LoopModel m{LoopType::kRenoPSquared, p, 0.1, pi2_gains()};
    EXPECT_TRUE(m.margins().has_value()) << p;
  }
}

// The paper's headline analytic claims, as properties over the load range.

class Pi2FlatGainMargin : public ::testing::TestWithParam<double> {};

TEST_P(Pi2FlatGainMargin, PositiveEverywhere) {
  // Figure 7: PI2 with 2.5x gains keeps a positive gain margin over the
  // entire load range (this is the "responsiveness without instability"
  // claim).
  LoopModel m{LoopType::kRenoPSquared, GetParam(), 0.1, pi2_gains()};
  const auto margins = m.margins();
  ASSERT_TRUE(margins.has_value());
  EXPECT_GT(margins->gain_margin_db, 0.0);
  EXPECT_GT(margins->phase_margin_deg, 0.0);
}

TEST_P(Pi2FlatGainMargin, OnlySlightlyAbove10DbAtHighLoad) {
  // Figure 7 / paper text: only for p' > 60% does the PI2 gain margin rise
  // slightly above 10 dB.
  const double p = GetParam();
  LoopModel m{LoopType::kRenoPSquared, p, 0.1, pi2_gains()};
  const auto margins = m.margins();
  ASSERT_TRUE(margins.has_value());
  if (p < 0.5) {
    EXPECT_LT(margins->gain_margin_db, 10.0) << p;
  }
}

INSTANTIATE_TEST_SUITE_P(AcrossLoad, Pi2FlatGainMargin,
                         ::testing::Values(0.001, 0.003, 0.01, 0.03, 0.1, 0.3,
                                           0.6, 1.0));

class ScalablePiStable : public ::testing::TestWithParam<double> {};

TEST_P(ScalablePiStable, DoubledGainsStillStable) {
  // Figure 7 "scal pi": the scalable loop tolerates 2x the PI2 gains.
  LoopModel m{LoopType::kScalableP, GetParam(), 0.1, scal_gains()};
  const auto margins = m.margins();
  ASSERT_TRUE(margins.has_value());
  EXPECT_GT(margins->gain_margin_db, 0.0);
  EXPECT_GT(margins->phase_margin_deg, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AcrossLoad, ScalablePiStable,
                         ::testing::Values(0.001, 0.01, 0.1, 0.3, 1.0));

TEST(FluidModel, FixedGainPiUnstableAtLowProbability) {
  // Figure 4: without autotune (tune = 1), the plain PI loop on Reno has a
  // negative gain margin at low p — the instability PIE's table fixes and
  // PI2 removes structurally.
  LoopModel low{LoopType::kRenoP, 1e-4, 0.1, pie_gains(1.0)};
  const auto m_low = low.margins();
  ASSERT_TRUE(m_low.has_value());
  EXPECT_LT(m_low->gain_margin_db, 0.0);

  LoopModel high{LoopType::kRenoP, 0.1, 0.1, pie_gains(1.0)};
  const auto m_high = high.margins();
  ASSERT_TRUE(m_high.has_value());
  EXPECT_GT(m_high->gain_margin_db, 0.0);
}

TEST(FluidModel, GainMarginDiagonalInPForFixedTune) {
  // Figure 4's diagonal: the gain margin increases monotonically with p for
  // fixed gains.
  double prev = -1e9;
  for (double p : {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5}) {
    LoopModel m{LoopType::kRenoP, p, 0.1, pie_gains(0.5)};
    const auto margins = m.margins();
    ASSERT_TRUE(margins.has_value());
    EXPECT_GT(margins->gain_margin_db, prev);
    prev = margins->gain_margin_db;
  }
}

TEST(FluidModel, AutotunedPieStaysStable) {
  // PIE's stepped tune keeps the Reno loop stable across the table's range.
  for (double p : {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5}) {
    LoopModel m{LoopType::kRenoP, p, 0.1, pie_gains(pie_tune_factor(p))};
    const auto margins = m.margins();
    ASSERT_TRUE(margins.has_value()) << p;
    EXPECT_GT(margins->gain_margin_db, 0.0) << p;
  }
}

TEST(FluidModel, Pi2FlatterThanPieAcrossLoad) {
  // The spread (max - min) of the gain margin across the load range must be
  // far smaller for PI2 than for autotuned PIE — the "flattening" effect of
  // the square.
  double pie_min = 1e9;
  double pie_max = -1e9;
  double pi2_min = 1e9;
  double pi2_max = -1e9;
  for (double pp : {0.01, 0.03, 0.1, 0.3, 1.0}) {  // p' range
    const double p = pp * pp;
    LoopModel pie{LoopType::kRenoP, p, 0.1, pie_gains(pie_tune_factor(p))};
    LoopModel pi2m{LoopType::kRenoPSquared, pp, 0.1, pi2_gains()};
    const auto mp = pie.margins();
    const auto m2 = pi2m.margins();
    ASSERT_TRUE(mp && m2);
    pie_min = std::min(pie_min, mp->gain_margin_db);
    pie_max = std::max(pie_max, mp->gain_margin_db);
    pi2_min = std::min(pi2_min, m2->gain_margin_db);
    pi2_max = std::max(pi2_max, m2->gain_margin_db);
  }
  EXPECT_LT(pi2_max - pi2_min, pie_max - pie_min);
}

TEST(FluidModel, TuneFactorTracksSqrt2P) {
  for (double p = 1e-6; p <= 0.5; p *= 3.0) {
    const double ratio = pie_tune_factor(p) / sqrt_2p(p);
    EXPECT_GT(ratio, 0.3) << p;
    EXPECT_LT(ratio, 3.0) << p;
  }
}

TEST(FluidModel, HigherRttLowersMargins) {
  // A longer feedback delay erodes stability at the same operating point.
  LoopModel fast{LoopType::kRenoPSquared, 0.1, 0.02, pi2_gains()};
  LoopModel slow{LoopType::kRenoPSquared, 0.1, 0.2, pi2_gains()};
  const auto mf = fast.margins();
  const auto ms = slow.margins();
  ASSERT_TRUE(mf && ms);
  EXPECT_GT(mf->gain_margin_db, ms->gain_margin_db);
}

TEST(FluidModel, LoopGainRatioPi2OverPieIs3Point5) {
  // Paper section 4: K_PI2 / K_PIE = 2.5 * sqrt(2) ~ 3.5, which the paper
  // quotes as 5.5 dB — i.e. power decibels, 10 log10(3.5).
  EXPECT_NEAR(2.5 * std::sqrt(2.0), 3.5, 0.05);
  EXPECT_NEAR(10.0 * std::log10(2.5 * std::sqrt(2.0)), 5.5, 0.3);
}

}  // namespace
}  // namespace pi2::control
