#include "control/window_laws.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pi2::control {
namespace {

TEST(WindowLaws, RenoEquation5) {
  EXPECT_NEAR(reno_window(0.01), 12.2, 1e-9);
  EXPECT_NEAR(reno_window(1.0), 1.22, 1e-9);
}

TEST(WindowLaws, CRenoEquation7) {
  EXPECT_NEAR(creno_window(0.01), 16.8, 1e-9);
  EXPECT_GT(creno_window(0.01), reno_window(0.01));  // beta 0.7 > 0.5
}

TEST(WindowLaws, CubicEquation6) {
  // W = 1.17 R^{3/4} / p^{3/4} at R = 1 s, p = 1.
  EXPECT_NEAR(cubic_window(1.0, 1.0), 1.17, 1e-9);
  // Quadrupling R at fixed p scales W by 4^{3/4}.
  EXPECT_NEAR(cubic_window(0.01, 0.4) / cubic_window(0.01, 0.1),
              std::pow(4.0, 0.75), 1e-9);
}

TEST(WindowLaws, DctcpEquations11And12) {
  EXPECT_DOUBLE_EQ(dctcp_window_probabilistic(0.1), 20.0);
  EXPECT_DOUBLE_EQ(dctcp_window_step(0.1), 200.0);
  // Step marking has a steeper exponent: the two laws cross at p where
  // 2/p = 2/p^2, i.e. p = 1.
  EXPECT_DOUBLE_EQ(dctcp_window_probabilistic(1.0), dctcp_window_step(1.0));
}

TEST(WindowLaws, InverseLawsRoundTrip) {
  for (double p : {0.001, 0.01, 0.1, 0.5}) {
    EXPECT_NEAR(reno_prob(reno_window(p)), p, 1e-12);
    EXPECT_NEAR(creno_prob(creno_window(p)), p, 1e-12);
    EXPECT_NEAR(dctcp_prob_probabilistic(dctcp_window_probabilistic(p)), p, 1e-12);
  }
}

TEST(WindowLaws, CRenoSwitchOverEquation8) {
  // Low rate / low RTT: CReno region. High W * R^{3/2}: pure Cubic.
  EXPECT_TRUE(cubic_in_creno_region(20.0, 0.01));    // 20 * 0.001 = 0.02
  EXPECT_FALSE(cubic_in_creno_region(1000.0, 0.1));  // 1000 * 0.0316 = 31.6
}

TEST(WindowLaws, CouplingEquation14) {
  EXPECT_DOUBLE_EQ(coupled_classic_prob(0.2, 2.0), 0.01);
  EXPECT_DOUBLE_EQ(coupled_classic_prob(1.0, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(coupled_classic_prob(0.0, 2.0), 0.0);
}

TEST(WindowLaws, DerivedKMatchesAppendixA) {
  // k = 2 / 1.68: substituting W_creno = W_dctcp in (7) and (11).
  EXPECT_NEAR(derived_coupling_factor(), 1.19047619, 1e-6);
}

TEST(WindowLaws, ScalabilityExponentEquation3) {
  // B = 1/2 (Reno): c ~ W^{-1} -> unscalable.
  EXPECT_DOUBLE_EQ(signals_per_rtt_exponent(0.5), -1.0);
  // B = 3/4 (Cubic): c ~ W^{-1/3} -> unscalable.
  EXPECT_NEAR(signals_per_rtt_exponent(0.75), -1.0 / 3.0, 1e-12);
  // B = 1 (DCTCP probabilistic): c constant -> scalable.
  EXPECT_DOUBLE_EQ(signals_per_rtt_exponent(1.0), 0.0);
  // B = 2 (DCTCP step): c grows -> scalable.
  EXPECT_DOUBLE_EQ(signals_per_rtt_exponent(2.0), 0.5);
}

// Parameterized check: signals per RTT c = p W shrink with load for Classic
// laws and stay constant for DCTCP probabilistic, across 4 decades of p.
class SignalsPerRtt : public ::testing::TestWithParam<double> {};

TEST_P(SignalsPerRtt, RenoSignalsShrinkAsWindowGrows) {
  const double p = GetParam();
  const double c_here = p * reno_window(p);
  const double c_lower = (p / 10.0) * reno_window(p / 10.0);
  EXPECT_LT(c_lower, c_here);  // scaling up (lower p) -> fewer signals
}

TEST_P(SignalsPerRtt, DctcpSignalsConstant) {
  const double p = GetParam();
  EXPECT_NEAR(p * dctcp_window_probabilistic(p),
              (p / 10.0) * dctcp_window_probabilistic(p / 10.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AcrossProbabilities, SignalsPerRtt,
                         ::testing::Values(0.5, 0.1, 0.01, 0.001, 0.0001));

}  // namespace
}  // namespace pi2::control
