// check_fuzz: the deterministic scenario-fuzzing driver.
//
// Batch mode (default) derives --cases configs from --seed, runs every
// oracle on each over --jobs worker threads, then re-runs a sample of cases
// serially to prove the batch results are --jobs-invariant and that distinct
// cases drew independent streams. Single-case mode (--case I) replays one
// case exactly as it ran inside any batch.
//
// On the first oracle failure the shrinking minimizer bisects the config
// toward a minimal still-failing scenario and a one-line repro command is
// printed (and written to --repro-out for CI artifacts):
//
//   repro: check_fuzz --seed S --case I
//
// --inject-oracle-fail I forces a synthetic failure at case I, proving the
// whole failure path (detection -> shrink -> repro line) end to end.
//
// Batch runs are durable: each finished case's outcome is journaled
// (fsync'd), SIGINT/SIGTERM stop the batch at a case boundary (exit 75),
// and --resume replays journaled outcomes instead of re-running the cases —
// the batch-level oracles (seed independence, --jobs invariance) still run
// over the combined set.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/campaign_oracle.hpp"
#include "check/fuzzer.hpp"
#include "check/oracles.hpp"
#include "check/shrinker.hpp"
#include "durable/journal.hpp"
#include "durable/shutdown.hpp"
#include "durable/status.hpp"
#include "runner/parallel_runner.hpp"
#include "sim/rng.hpp"

namespace {

using namespace pi2;

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t cases = 200;
  /// Multi-hop topology cases appended to the batch; default cases/8.
  long long topo_cases = -1;
  /// Campaign cases (spec properties + one materialized resilience point
  /// through the fault/fluid axes) appended after the topology sub-batch;
  /// default cases/8.
  long long campaign_cases = -1;
  long long single_case = -1;
  long long single_topo_case = -1;
  unsigned jobs = 0;
  std::string scratch;
  long long inject_case = -1;
  std::string repro_out;
  int shrink_evals = 40;
  std::uint64_t recheck = 5;
  bool verbose = false;
  bool resume = false;
  std::string journal_path;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cases" && i + 1 < argc) {
      args.cases = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--topo-cases" && i + 1 < argc) {
      args.topo_cases = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--campaign-cases" && i + 1 < argc) {
      args.campaign_cases = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--case" && i + 1 < argc) {
      args.single_case = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--topo-case" && i + 1 < argc) {
      args.single_topo_case = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      args.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--scratch" && i + 1 < argc) {
      args.scratch = argv[++i];
    } else if (arg == "--inject-oracle-fail" && i + 1 < argc) {
      args.inject_case = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--repro-out" && i + 1 < argc) {
      args.repro_out = argv[++i];
    } else if (arg == "--shrink-evals" && i + 1 < argc) {
      args.shrink_evals = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--recheck" && i + 1 < argc) {
      args.recheck = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--verbose" || arg == "-v") {
      args.verbose = true;
    } else if (arg == "--resume") {
      args.resume = true;
    } else if (arg == "--journal" && i + 1 < argc) {
      args.journal_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: check_fuzz [--seed N] [--cases N] [--topo-cases N]\n"
          "                  [--case I] [--topo-case I] [--jobs N]\n"
          "                  [--scratch DIR] [--repro-out PATH]\n"
          "                  [--inject-oracle-fail I] [--shrink-evals N]\n"
          "                  [--recheck N] [--verbose]\n"
          "                  [--resume] [--journal PATH]\n"
          "  --seed N     base seed; case i uses stream derive_seed(N, i)\n"
          "  --cases N    batch size (default 200)\n"
          "  --topo-cases N  multi-hop topology cases appended to the batch\n"
          "               (default cases/8)\n"
          "  --campaign-cases N  campaign cases (spec properties plus one\n"
          "               materialized resilience fault/fluid point each)\n"
          "               appended after the topology sub-batch\n"
          "               (default cases/8)\n"
          "  --case I     replay exactly one case and exit\n"
          "  --topo-case I  replay exactly one topology case and exit\n"
          "  --jobs N     worker threads (default: all cores)\n"
          "  --scratch DIR  telemetry artifacts per case (enables the JSONL\n"
          "               parse-back oracle)\n"
          "  --repro-out PATH  write the repro command of the first failing\n"
          "               case to PATH (CI artifact)\n"
          "  --inject-oracle-fail I  self-test: force case I to fail\n"
          "  --resume     replay journaled case outcomes from an interrupted\n"
          "               batch; only missing cases re-run\n"
          "  --journal PATH  journal location (default check_fuzz.journal)\n");
      std::exit(0);
    }
  }
  return args;
}

// --- CaseOutcome <-> journal payload -------------------------------------
// Same exactness rules as the RunResult codec: integers in hex, strings as
// length + hex bytes, one line of space-separated tokens.

void put_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, " %llx", static_cast<unsigned long long>(v));
  out += buf;
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  if (s.empty()) return;
  out += ' ';
  for (const char c : s) {
    char buf[4];
    std::snprintf(buf, sizeof buf, "%02x", static_cast<unsigned char>(c));
    out += buf;
  }
}

std::string encode_outcome(const check::CaseOutcome& outcome) {
  std::string out = "pi2-fuzz-outcome-v1";
  put_u64(out, outcome.index);
  put_u64(out, outcome.seed);
  put_u64(out, outcome.digest);
  put_u64(out, outcome.failures.size());
  for (const auto& failure : outcome.failures) {
    put_string(out, failure.oracle);
    put_string(out, failure.detail);
  }
  return out;
}

/// Token reader for decode_outcome; any structural mismatch sets fail.
struct OutcomeReader {
  const std::string& s;
  std::size_t pos = 0;
  bool fail = false;

  std::string next() {
    while (pos < s.size() && s[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < s.size() && s[pos] != ' ') ++pos;
    if (pos == start) fail = true;
    return s.substr(start, pos - start);
  }
  std::uint64_t u64() {
    const std::string tok = next();
    if (fail) return 0;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(tok.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') fail = true;
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (fail || n > (1u << 20)) {
      fail = true;
      return {};
    }
    if (n == 0) return {};
    const std::string tok = next();
    if (fail || tok.size() != 2 * n) {
      fail = true;
      return {};
    }
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < tok.size(); i += 2) {
      unsigned byte = 0;
      if (std::sscanf(tok.c_str() + i, "%2x", &byte) != 1) {
        fail = true;
        return {};
      }
      out += static_cast<char>(byte);
    }
    return out;
  }
};

bool decode_outcome(const std::string& payload, check::CaseOutcome& outcome) {
  OutcomeReader r{payload};
  if (r.next() != "pi2-fuzz-outcome-v1" || r.fail) return false;
  check::CaseOutcome built;
  built.index = r.u64();
  built.seed = r.u64();
  built.digest = r.u64();
  const std::uint64_t n = r.u64();
  if (r.fail || n > (1u << 20)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    check::OracleFailure failure;
    failure.oracle = r.str();
    failure.detail = r.str();
    if (r.fail) return false;
    built.failures.push_back(std::move(failure));
  }
  outcome = std::move(built);
  return true;
}

/// Everything the batch's outcomes depend on; a journal from a different
/// configuration is refused on --resume.
/// Resolved topology-case count (--topo-cases, defaulting to cases/8).
std::uint64_t topo_case_count(const Args& args) {
  return args.topo_cases >= 0 ? static_cast<std::uint64_t>(args.topo_cases)
                              : args.cases / 8;
}

/// Resolved campaign-case count (--campaign-cases, defaulting to cases/8).
std::uint64_t campaign_case_count(const Args& args) {
  return args.campaign_cases >= 0
             ? static_cast<std::uint64_t>(args.campaign_cases)
             : args.cases / 8;
}

std::uint64_t fuzz_campaign_key(const Args& args) {
  pi2::durable::Fnv1a h;
  // v3: campaign sub-batch joined (fault/fluid axes drawn end to end).
  h.mix_string("pi2-fuzz-campaign-v3");
  h.mix_u64(args.seed);
  h.mix_u64(args.cases);
  h.mix_u64(topo_case_count(args));
  h.mix_u64(campaign_case_count(args));
  h.mix_u64(static_cast<std::uint64_t>(args.inject_case + 1));
  h.mix_u64(args.scratch.empty() ? 0 : 1);  // scratch gates an oracle
  return h.state;
}

std::uint64_t fuzz_case_key(const Args& args, std::uint64_t index) {
  pi2::durable::Fnv1a h;
  h.mix_string("pi2-fuzz-case-v1");
  h.mix_u64(index);
  h.mix_u64(sim::Rng::derive_seed(args.seed, index));
  return h.state;
}

std::uint64_t fuzz_topo_case_key(const Args& args, std::uint64_t index) {
  pi2::durable::Fnv1a h;
  h.mix_string("pi2-fuzz-topo-case-v1");
  h.mix_u64(index);
  h.mix_u64(sim::Rng::derive_seed(args.seed, (1ull << 32) + index));
  return h.state;
}

std::uint64_t fuzz_campaign_case_key(const Args& args, std::uint64_t index) {
  pi2::durable::Fnv1a h;
  h.mix_string("pi2-fuzz-campaign-case-v1");
  h.mix_u64(index);
  h.mix_u64(sim::Rng::derive_seed(args.seed, (2ull << 32) + index));
  return h.state;
}

/// Per-campaign-case spec seed: its own stream slice so dumbbell and
/// topology draws stay untouched when the sub-batch size changes.
std::uint64_t campaign_case_seed(const Args& args, std::uint64_t index) {
  return sim::Rng::derive_seed(args.seed, (2ull << 32) + index);
}

check::OracleOptions oracle_options(const Args& args, std::uint64_t index,
                                    const char* run_prefix) {
  check::OracleOptions options;
  options.scratch_dir = args.scratch;
  options.run_id = std::string(run_prefix) + "_" + std::to_string(index);
  if (args.inject_case >= 0 &&
      index == static_cast<std::uint64_t>(args.inject_case)) {
    options.inject_failure = "injected";
  }
  return options;
}

void print_failures(const check::ScenarioFuzzer& fuzzer,
                    const check::CaseOutcome& outcome,
                    const scenario::DumbbellConfig& config) {
  std::printf("case %llu FAILED (%s)\n",
              static_cast<unsigned long long>(outcome.index),
              check::ScenarioFuzzer::describe(config).c_str());
  for (const auto& failure : outcome.failures) {
    std::printf("  [%s] %s\n", failure.oracle.c_str(), failure.detail.c_str());
  }
  std::printf("repro: %s\n", fuzzer.repro_command(outcome.index).c_str());
}

/// Shrinks the failing case and prints the minimal scenario. The predicate
/// preserves the injection hook so the synthetic self-test failure shrinks
/// like a real one.
void shrink_and_report(const Args& args, const check::ScenarioFuzzer& fuzzer,
                       const scenario::DumbbellConfig& config,
                       std::uint64_t index) {
  check::ShrinkOptions shrink_options;
  shrink_options.max_evals = args.shrink_evals;
  const auto result = check::shrink(
      config,
      [&](const scenario::DumbbellConfig& candidate) {
        // Shrink evaluations skip the telemetry artifacts (pure speed); a
        // telemetry-oracle failure simply stops shrinking at the original.
        check::OracleOptions options;
        if (args.inject_case >= 0 &&
            index == static_cast<std::uint64_t>(args.inject_case)) {
          options.inject_failure = "injected";
        }
        return !check::run_case_oracles(candidate, index, options).ok();
      },
      shrink_options);
  std::printf("shrunk (%d evals, %d steps): %s\n", result.evaluations,
              result.accepted_steps,
              check::ScenarioFuzzer::describe(result.config).c_str());
  std::printf("repro: %s\n", fuzzer.repro_command(index).c_str());

  if (!args.repro_out.empty()) {
    if (std::FILE* out = std::fopen(args.repro_out.c_str(), "w")) {
      std::fprintf(out, "%s\n", fuzzer.repro_command(index).c_str());
      std::fprintf(out, "# minimal: %s\n",
                   check::ScenarioFuzzer::describe(result.config).c_str());
      std::fclose(out);
    }
  }
}

void print_topo_failures(const check::ScenarioFuzzer& fuzzer,
                         const check::CaseOutcome& outcome,
                         const topology::TopologyConfig& config) {
  std::printf("topology case %llu FAILED (%s)\n",
              static_cast<unsigned long long>(outcome.index),
              check::ScenarioFuzzer::describe(config).c_str());
  for (const auto& failure : outcome.failures) {
    std::printf("  [%s] %s\n", failure.oracle.c_str(), failure.detail.c_str());
  }
  // No shrinker for graph-shaped cases: the repro plus the one-line topology
  // summary (per-link AQM/rate, flow counts) is the debugging handle.
  std::printf("repro: %s\n", fuzzer.topology_repro_command(outcome.index).c_str());
}

int run_single_topo_case(const Args& args, const check::ScenarioFuzzer& fuzzer) {
  const auto index = static_cast<std::uint64_t>(args.single_topo_case);
  const auto config = fuzzer.make_topology_config(index);
  std::printf("topology case %llu: %s\n",
              static_cast<unsigned long long>(index),
              check::ScenarioFuzzer::describe(config).c_str());
  const auto outcome = check::run_topology_case_oracles(
      config, index, oracle_options(args, index, "topo"));

  const auto again = check::run_topology_case_oracles(
      config, index, oracle_options(args, index, "topo_again"));
  if (again.digest != outcome.digest) {
    std::printf("NONDETERMINISM: digest %016llx vs %016llx on identical runs\n",
                static_cast<unsigned long long>(outcome.digest),
                static_cast<unsigned long long>(again.digest));
    return 1;
  }

  if (!outcome.ok()) {
    print_topo_failures(fuzzer, outcome, config);
    if (!args.repro_out.empty()) {
      if (std::FILE* out = std::fopen(args.repro_out.c_str(), "w")) {
        std::fprintf(out, "%s\n", fuzzer.topology_repro_command(index).c_str());
        std::fclose(out);
      }
    }
    return 1;
  }
  std::printf("topology case %llu ok (digest %016llx)\n",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(outcome.digest));
  return 0;
}

int run_single_case(const Args& args, const check::ScenarioFuzzer& fuzzer) {
  const auto index = static_cast<std::uint64_t>(args.single_case);
  const auto config = fuzzer.make_config(index);
  std::printf("case %llu: %s\n", static_cast<unsigned long long>(index),
              check::ScenarioFuzzer::describe(config).c_str());
  const auto outcome =
      check::run_case_oracles(config, index, oracle_options(args, index, "case"));

  // Same-process determinism: a second run must produce the same digest.
  const auto again =
      check::run_case_oracles(config, index, oracle_options(args, index, "again"));
  if (again.digest != outcome.digest) {
    std::printf("NONDETERMINISM: digest %016llx vs %016llx on identical runs\n",
                static_cast<unsigned long long>(outcome.digest),
                static_cast<unsigned long long>(again.digest));
    return 1;
  }

  if (!outcome.ok()) {
    print_failures(fuzzer, outcome, config);
    shrink_and_report(args, fuzzer, config, index);
    return 1;
  }
  std::printf("case %llu ok (digest %016llx)\n",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(outcome.digest));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  check::FuzzOptions fuzz_options;
  fuzz_options.base_seed = args.seed;
  const check::ScenarioFuzzer fuzzer{fuzz_options};

  if (args.single_case >= 0) return run_single_case(args, fuzzer);
  if (args.single_topo_case >= 0) return run_single_topo_case(args, fuzzer);

  const std::uint64_t topo_cases = topo_case_count(args);
  const std::uint64_t camp_cases = campaign_case_count(args);
  const std::uint64_t total_cases = args.cases + topo_cases + camp_cases;
  std::printf(
      "# check_fuzz: %llu cases (+%llu topology, +%llu campaign) from seed "
      "%llu\n",
      static_cast<unsigned long long>(args.cases),
      static_cast<unsigned long long>(topo_cases),
      static_cast<unsigned long long>(camp_cases),
      static_cast<unsigned long long>(args.seed));

  durable::ShutdownController::install();
  const std::uint64_t campaign = fuzz_campaign_key(args);
  const std::string journal_file =
      args.journal_path.empty() ? "check_fuzz.journal" : args.journal_path;

  const runner::ParallelRunner pool{args.jobs};
  // Task layout: dumbbell cases occupy [0, cases), topology cases
  // [cases, cases + topo_cases) and campaign cases the final slice, each
  // with sub-batch-local indices.
  const auto task_key = [&](std::uint64_t i) {
    if (i < args.cases) return fuzz_case_key(args, i);
    if (i < args.cases + topo_cases) {
      return fuzz_topo_case_key(args, i - args.cases);
    }
    return fuzz_campaign_case_key(args, i - args.cases - topo_cases);
  };
  std::vector<check::CaseOutcome> outcomes(total_cases);
  std::vector<bool> replayed(total_cases, false);
  bool journal_keep = false;
  if (args.resume) {
    const durable::LoadedJournal loaded =
        durable::load_journal(journal_file, campaign);
    if (loaded.exists && !loaded.header_ok) {
      std::fprintf(stderr,
                   "resume: journal %s is from a different batch; ignoring\n",
                   journal_file.c_str());
    }
    if (loaded.header_ok) {
      journal_keep = true;
      std::size_t count = 0;
      for (std::uint64_t i = 0; i < total_cases; ++i) {
        const auto it = loaded.points.find(task_key(i));
        if (it == loaded.points.end()) continue;
        if (decode_outcome(it->second, outcomes[i])) {
          replayed[i] = true;
          ++count;
        }
      }
      std::fprintf(stderr, "resume: replaying %zu of %llu case(s) from %s\n",
                   count, static_cast<unsigned long long>(total_cases),
                   journal_file.c_str());
    }
  }
  durable::JournalWriter journal{journal_file, campaign, journal_keep};

  runner::GuardOptions guard;
  guard.cancel = durable::ShutdownController::flag();
  std::size_t interrupted_cases = 0;

  const auto report = pool.run_ordered_guarded<check::CaseOutcome>(
      total_cases,
      [&](std::size_t i) {
        if (replayed[i]) return outcomes[i];
        if (i < args.cases) {
          auto config = fuzzer.make_config(i);
          config.stop = durable::ShutdownController::flag();
          return check::run_case_oracles(config, i,
                                         oracle_options(args, i, "case"));
        }
        if (i < args.cases + topo_cases) {
          const std::uint64_t j = i - args.cases;
          auto config = fuzzer.make_topology_config(j);
          config.stop = durable::ShutdownController::flag();
          return check::run_topology_case_oracles(
              config, j, oracle_options(args, i, "topo"));
        }
        const std::uint64_t j = i - args.cases - topo_cases;
        return check::run_campaign_case_oracles(
            campaign_case_seed(args, j), j,
            oracle_options(args, i, "campaign"));
      },
      [&](std::size_t i, runner::TaskStatus status, check::CaseOutcome* outcome) {
        if (status == runner::TaskStatus::kOk && outcome != nullptr) {
          outcomes[i] = *outcome;
          if (!replayed[i] && journal.healthy()) {
            (void)journal.append_point(task_key(i), encode_outcome(outcomes[i]));
          }
          if (args.verbose) {
            std::printf("case %zu %s\n", i,
                        outcome->ok() ? "ok" : "FAILED");
          }
        } else if (status == runner::TaskStatus::kInterrupted) {
          ++interrupted_cases;
        } else {
          outcomes[i].index = i < args.cases ? i
                              : i < args.cases + topo_cases
                                  ? i - args.cases
                                  : i - args.cases - topo_cases;
          outcomes[i].failures.push_back(
              {"harness", std::string("case crashed or timed out: ") +
                              runner::to_string(status)});
        }
      },
      guard);

  if (durable::ShutdownController::requested()) {
    if (journal.healthy()) {
      (void)journal.append_interrupted(
          "signal " +
          std::to_string(durable::ShutdownController::signal_number()));
    }
    std::fprintf(stderr,
                 "check_fuzz: interrupted — %zu case(s) unfinished; re-run "
                 "with --resume to finish (journal: %s)\n",
                 interrupted_cases, journal_file.c_str());
    return durable::ShutdownController::kExitInterrupted;
  }

  // Seed-stream independence at fuzz scale: distinct cases must have drawn
  // distinct per-case seeds (derive_seed collisions would silently halve
  // coverage).
  std::set<std::uint64_t> seeds;
  for (const auto& outcome : outcomes) seeds.insert(outcome.seed);
  if (seeds.size() != outcomes.size()) {
    std::printf("FAIL: only %zu distinct case seeds across %zu cases\n",
                seeds.size(), outcomes.size());
    return 1;
  }

  // --jobs invariance: replay a sample of cases serially (fresh configs,
  // same streams) and compare digests against the batch run.
  const std::uint64_t recheck =
      args.recheck < args.cases ? args.recheck : args.cases;
  for (std::uint64_t i = 0; i < recheck; ++i) {
    const std::uint64_t index = i * (args.cases / (recheck ? recheck : 1));
    const auto config = fuzzer.make_config(index);
    const auto serial = check::run_case_oracles(
        config, index, oracle_options(args, index, "recheck"));
    if (serial.digest != outcomes[index].digest) {
      std::printf("FAIL: case %llu digest differs serial %016llx vs batch "
                  "%016llx (--jobs variance)\n",
                  static_cast<unsigned long long>(index),
                  static_cast<unsigned long long>(serial.digest),
                  static_cast<unsigned long long>(outcomes[index].digest));
      return 1;
    }
  }
  // Same invariance for the topology sub-batch (per-topology digests fold
  // every link slice, so a thread-order leak in any hop would surface).
  const std::uint64_t topo_recheck =
      args.recheck < topo_cases ? args.recheck : topo_cases;
  for (std::uint64_t i = 0; i < topo_recheck; ++i) {
    const std::uint64_t index =
        i * (topo_cases / (topo_recheck ? topo_recheck : 1));
    const auto config = fuzzer.make_topology_config(index);
    const auto serial = check::run_topology_case_oracles(
        config, index, oracle_options(args, args.cases + index, "topo_recheck"));
    if (serial.digest != outcomes[args.cases + index].digest) {
      std::printf("FAIL: topology case %llu digest differs serial %016llx vs "
                  "batch %016llx (--jobs variance)\n",
                  static_cast<unsigned long long>(index),
                  static_cast<unsigned long long>(serial.digest),
                  static_cast<unsigned long long>(
                      outcomes[args.cases + index].digest));
      return 1;
    }
  }
  // And for the campaign sub-batch (the folded expansion digest means this
  // recheck also proves expand() is --jobs invariant).
  const std::uint64_t camp_recheck =
      args.recheck < camp_cases ? args.recheck : camp_cases;
  for (std::uint64_t i = 0; i < camp_recheck; ++i) {
    const std::uint64_t index =
        i * (camp_cases / (camp_recheck ? camp_recheck : 1));
    const std::uint64_t at = args.cases + topo_cases + index;
    const auto serial = check::run_campaign_case_oracles(
        campaign_case_seed(args, index), index,
        oracle_options(args, at, "campaign_recheck"));
    if (serial.digest != outcomes[at].digest) {
      std::printf("FAIL: campaign case %llu digest differs serial %016llx vs "
                  "batch %016llx (--jobs variance)\n",
                  static_cast<unsigned long long>(index),
                  static_cast<unsigned long long>(serial.digest),
                  static_cast<unsigned long long>(outcomes[at].digest));
      return 1;
    }
  }

  std::uint64_t failed = 0;
  for (std::uint64_t i = 0; i < total_cases; ++i) {
    const check::CaseOutcome& outcome = outcomes[i];
    if (outcome.ok()) continue;
    ++failed;
    if (failed != 1) continue;
    if (i < args.cases) {
      const auto config = fuzzer.make_config(outcome.index);
      print_failures(fuzzer, outcome, config);
      shrink_and_report(args, fuzzer, config, outcome.index);
    } else if (i < args.cases + topo_cases) {
      const auto config = fuzzer.make_topology_config(outcome.index);
      print_topo_failures(fuzzer, outcome, config);
      if (!args.repro_out.empty()) {
        if (std::FILE* out = std::fopen(args.repro_out.c_str(), "w")) {
          std::fprintf(out, "%s\n",
                       fuzzer.topology_repro_command(outcome.index).c_str());
          std::fclose(out);
        }
      }
    } else {
      // Campaign cases regenerate deterministically from (seed, index); no
      // shrinker — the failure detail plus the derived spec seed is the
      // debugging handle.
      std::printf("campaign case %llu FAILED (spec seed %llu)\n",
                  static_cast<unsigned long long>(outcome.index),
                  static_cast<unsigned long long>(
                      campaign_case_seed(args, outcome.index)));
      for (const auto& failure : outcome.failures) {
        std::printf("  [%s] %s\n", failure.oracle.c_str(),
                    failure.detail.c_str());
      }
    }
  }
  std::printf("# %llu/%llu cases clean (%llu topology, %llu campaign), "
              "%llu+%llu+%llu recheck digests stable\n",
              static_cast<unsigned long long>(total_cases - failed),
              static_cast<unsigned long long>(total_cases),
              static_cast<unsigned long long>(topo_cases),
              static_cast<unsigned long long>(camp_cases),
              static_cast<unsigned long long>(recheck),
              static_cast<unsigned long long>(topo_recheck),
              static_cast<unsigned long long>(camp_recheck));
  return failed == 0 ? 0 : 1;
}
