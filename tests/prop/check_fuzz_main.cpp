// check_fuzz: the deterministic scenario-fuzzing driver.
//
// Batch mode (default) derives --cases configs from --seed, runs every
// oracle on each over --jobs worker threads, then re-runs a sample of cases
// serially to prove the batch results are --jobs-invariant and that distinct
// cases drew independent streams. Single-case mode (--case I) replays one
// case exactly as it ran inside any batch.
//
// On the first oracle failure the shrinking minimizer bisects the config
// toward a minimal still-failing scenario and a one-line repro command is
// printed (and written to --repro-out for CI artifacts):
//
//   repro: check_fuzz --seed S --case I
//
// --inject-oracle-fail I forces a synthetic failure at case I, proving the
// whole failure path (detection -> shrink -> repro line) end to end.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/fuzzer.hpp"
#include "check/oracles.hpp"
#include "check/shrinker.hpp"
#include "runner/parallel_runner.hpp"

namespace {

using namespace pi2;

struct Args {
  std::uint64_t seed = 1;
  std::uint64_t cases = 200;
  long long single_case = -1;
  unsigned jobs = 0;
  std::string scratch;
  long long inject_case = -1;
  std::string repro_out;
  int shrink_evals = 40;
  std::uint64_t recheck = 5;
  bool verbose = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cases" && i + 1 < argc) {
      args.cases = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--case" && i + 1 < argc) {
      args.single_case = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < argc) {
      args.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--scratch" && i + 1 < argc) {
      args.scratch = argv[++i];
    } else if (arg == "--inject-oracle-fail" && i + 1 < argc) {
      args.inject_case = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--repro-out" && i + 1 < argc) {
      args.repro_out = argv[++i];
    } else if (arg == "--shrink-evals" && i + 1 < argc) {
      args.shrink_evals = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--recheck" && i + 1 < argc) {
      args.recheck = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--verbose" || arg == "-v") {
      args.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: check_fuzz [--seed N] [--cases N] [--case I] [--jobs N]\n"
          "                  [--scratch DIR] [--repro-out PATH]\n"
          "                  [--inject-oracle-fail I] [--shrink-evals N]\n"
          "                  [--recheck N] [--verbose]\n"
          "  --seed N     base seed; case i uses stream derive_seed(N, i)\n"
          "  --cases N    batch size (default 200)\n"
          "  --case I     replay exactly one case and exit\n"
          "  --jobs N     worker threads (default: all cores)\n"
          "  --scratch DIR  telemetry artifacts per case (enables the JSONL\n"
          "               parse-back oracle)\n"
          "  --repro-out PATH  write the repro command of the first failing\n"
          "               case to PATH (CI artifact)\n"
          "  --inject-oracle-fail I  self-test: force case I to fail\n");
      std::exit(0);
    }
  }
  return args;
}

check::OracleOptions oracle_options(const Args& args, std::uint64_t index,
                                    const char* run_prefix) {
  check::OracleOptions options;
  options.scratch_dir = args.scratch;
  options.run_id = std::string(run_prefix) + "_" + std::to_string(index);
  if (args.inject_case >= 0 &&
      index == static_cast<std::uint64_t>(args.inject_case)) {
    options.inject_failure = "injected";
  }
  return options;
}

void print_failures(const check::ScenarioFuzzer& fuzzer,
                    const check::CaseOutcome& outcome,
                    const scenario::DumbbellConfig& config) {
  std::printf("case %llu FAILED (%s)\n",
              static_cast<unsigned long long>(outcome.index),
              check::ScenarioFuzzer::describe(config).c_str());
  for (const auto& failure : outcome.failures) {
    std::printf("  [%s] %s\n", failure.oracle.c_str(), failure.detail.c_str());
  }
  std::printf("repro: %s\n", fuzzer.repro_command(outcome.index).c_str());
}

/// Shrinks the failing case and prints the minimal scenario. The predicate
/// preserves the injection hook so the synthetic self-test failure shrinks
/// like a real one.
void shrink_and_report(const Args& args, const check::ScenarioFuzzer& fuzzer,
                       const scenario::DumbbellConfig& config,
                       std::uint64_t index) {
  check::ShrinkOptions shrink_options;
  shrink_options.max_evals = args.shrink_evals;
  const auto result = check::shrink(
      config,
      [&](const scenario::DumbbellConfig& candidate) {
        // Shrink evaluations skip the telemetry artifacts (pure speed); a
        // telemetry-oracle failure simply stops shrinking at the original.
        check::OracleOptions options;
        if (args.inject_case >= 0 &&
            index == static_cast<std::uint64_t>(args.inject_case)) {
          options.inject_failure = "injected";
        }
        return !check::run_case_oracles(candidate, index, options).ok();
      },
      shrink_options);
  std::printf("shrunk (%d evals, %d steps): %s\n", result.evaluations,
              result.accepted_steps,
              check::ScenarioFuzzer::describe(result.config).c_str());
  std::printf("repro: %s\n", fuzzer.repro_command(index).c_str());

  if (!args.repro_out.empty()) {
    if (std::FILE* out = std::fopen(args.repro_out.c_str(), "w")) {
      std::fprintf(out, "%s\n", fuzzer.repro_command(index).c_str());
      std::fprintf(out, "# minimal: %s\n",
                   check::ScenarioFuzzer::describe(result.config).c_str());
      std::fclose(out);
    }
  }
}

int run_single_case(const Args& args, const check::ScenarioFuzzer& fuzzer) {
  const auto index = static_cast<std::uint64_t>(args.single_case);
  const auto config = fuzzer.make_config(index);
  std::printf("case %llu: %s\n", static_cast<unsigned long long>(index),
              check::ScenarioFuzzer::describe(config).c_str());
  const auto outcome =
      check::run_case_oracles(config, index, oracle_options(args, index, "case"));

  // Same-process determinism: a second run must produce the same digest.
  const auto again =
      check::run_case_oracles(config, index, oracle_options(args, index, "again"));
  if (again.digest != outcome.digest) {
    std::printf("NONDETERMINISM: digest %016llx vs %016llx on identical runs\n",
                static_cast<unsigned long long>(outcome.digest),
                static_cast<unsigned long long>(again.digest));
    return 1;
  }

  if (!outcome.ok()) {
    print_failures(fuzzer, outcome, config);
    shrink_and_report(args, fuzzer, config, index);
    return 1;
  }
  std::printf("case %llu ok (digest %016llx)\n",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(outcome.digest));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  check::FuzzOptions fuzz_options;
  fuzz_options.base_seed = args.seed;
  const check::ScenarioFuzzer fuzzer{fuzz_options};

  if (args.single_case >= 0) return run_single_case(args, fuzzer);

  std::printf("# check_fuzz: %llu cases from seed %llu\n",
              static_cast<unsigned long long>(args.cases),
              static_cast<unsigned long long>(args.seed));

  const runner::ParallelRunner pool{args.jobs};
  std::vector<check::CaseOutcome> outcomes(args.cases);
  const auto report = pool.run_ordered_guarded<check::CaseOutcome>(
      args.cases,
      [&](std::size_t i) {
        const auto config = fuzzer.make_config(i);
        return check::run_case_oracles(config, i, oracle_options(args, i, "case"));
      },
      [&](std::size_t i, runner::TaskStatus status, check::CaseOutcome* outcome) {
        if (status == runner::TaskStatus::kOk && outcome != nullptr) {
          outcomes[i] = *outcome;
          if (args.verbose) {
            std::printf("case %zu %s\n", i,
                        outcome->ok() ? "ok" : "FAILED");
          }
        } else {
          outcomes[i].index = i;
          outcomes[i].failures.push_back(
              {"harness", std::string("case crashed or timed out: ") +
                              runner::to_string(status)});
        }
      },
      runner::GuardOptions{});

  // Seed-stream independence at fuzz scale: distinct cases must have drawn
  // distinct per-case seeds (derive_seed collisions would silently halve
  // coverage).
  std::set<std::uint64_t> seeds;
  for (const auto& outcome : outcomes) seeds.insert(outcome.seed);
  if (seeds.size() != outcomes.size()) {
    std::printf("FAIL: only %zu distinct case seeds across %zu cases\n",
                seeds.size(), outcomes.size());
    return 1;
  }

  // --jobs invariance: replay a sample of cases serially (fresh configs,
  // same streams) and compare digests against the batch run.
  const std::uint64_t recheck =
      args.recheck < args.cases ? args.recheck : args.cases;
  for (std::uint64_t i = 0; i < recheck; ++i) {
    const std::uint64_t index = i * (args.cases / (recheck ? recheck : 1));
    const auto config = fuzzer.make_config(index);
    const auto serial = check::run_case_oracles(
        config, index, oracle_options(args, index, "recheck"));
    if (serial.digest != outcomes[index].digest) {
      std::printf("FAIL: case %llu digest differs serial %016llx vs batch "
                  "%016llx (--jobs variance)\n",
                  static_cast<unsigned long long>(index),
                  static_cast<unsigned long long>(serial.digest),
                  static_cast<unsigned long long>(outcomes[index].digest));
      return 1;
    }
  }

  std::uint64_t failed = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.ok()) continue;
    ++failed;
    if (failed == 1) {
      const auto config = fuzzer.make_config(outcome.index);
      print_failures(fuzzer, outcome, config);
      shrink_and_report(args, fuzzer, config, outcome.index);
    }
  }
  std::printf("# %llu/%llu cases clean, %llu recheck digests stable\n",
              static_cast<unsigned long long>(args.cases - failed),
              static_cast<unsigned long long>(args.cases),
              static_cast<unsigned long long>(recheck));
  return failed == 0 ? 0 : 1;
}
