// Shrinker: greedy minimization under a failure predicate, with validity
// and budget guarantees.
#include "check/shrinker.hpp"

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "sim/time.hpp"

namespace pi2::check {
namespace {

/// A deliberately noisy config: everything the shrinker knows how to cut.
scenario::DumbbellConfig noisy_config() {
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = sim::from_seconds(8.0);
  cfg.stats_start = sim::from_seconds(2.0);
  cfg.buffer_packets = 40000;
  cfg.aqm.type = scenario::AqmType::kCoupledPi2;
  cfg.aqm.alpha_hz = 0.5;
  cfg.aqm.beta_hz = 5.0;
  scenario::TcpFlowSpec tcp;
  tcp.count = 4;
  cfg.tcp_flows.push_back(tcp);
  cfg.tcp_flows.push_back(tcp);
  scenario::UdpFlowSpec udp;
  udp.rate_bps = 2e6;
  cfg.udp_flows.push_back(udp);
  cfg.rate_changes.push_back({sim::from_seconds(3.0), 5e6});
  cfg.faults.rate_step(sim::from_seconds(1.0), 5e6)
      .burst_loss(sim::from_seconds(2.0), 5);
  return cfg;
}

TEST(Shrinker, AlwaysFailingPredicateShrinksToMinimum) {
  const auto result =
      shrink(noisy_config(), [](const scenario::DumbbellConfig&) { return true; });
  EXPECT_TRUE(result.config.faults.events.empty());
  EXPECT_TRUE(result.config.tcp_flows.empty());
  EXPECT_TRUE(result.config.udp_flows.empty());
  EXPECT_TRUE(result.config.rate_changes.empty());
  EXPECT_LE(sim::to_seconds(result.config.duration), 0.5 + 1e-9);
  EXPECT_FALSE(result.config.aqm.alpha_hz.has_value());
  EXPECT_EQ(result.config.validate(), "");
  EXPECT_GT(result.accepted_steps, 5);
}

TEST(Shrinker, PreservesTheFailureTrigger) {
  // "Failure" depends on the UDP flow being present: the shrinker must cut
  // everything else but keep it.
  const auto result = shrink(noisy_config(), [](const scenario::DumbbellConfig& c) {
    return !c.udp_flows.empty();
  });
  ASSERT_EQ(result.config.udp_flows.size(), 1u);
  EXPECT_TRUE(result.config.tcp_flows.empty());
  EXPECT_TRUE(result.config.faults.events.empty());
  EXPECT_EQ(result.config.validate(), "");
}

TEST(Shrinker, NeverFailingSmallerReturnsOriginal) {
  const auto original = noisy_config();
  int calls = 0;
  const auto result = shrink(original, [&](const scenario::DumbbellConfig&) {
    ++calls;
    return false;  // nothing smaller reproduces
  });
  EXPECT_EQ(result.accepted_steps, 0);
  EXPECT_EQ(result.evaluations, calls);
  EXPECT_EQ(result.config.tcp_flows.size(), original.tcp_flows.size());
  EXPECT_EQ(result.config.faults.events.size(), original.faults.events.size());
  EXPECT_EQ(result.config.duration, original.duration);
}

TEST(Shrinker, RespectsTheEvaluationBudget) {
  ShrinkOptions options;
  options.max_evals = 3;
  const auto result = shrink(
      noisy_config(), [](const scenario::DumbbellConfig&) { return true; },
      options);
  EXPECT_LE(result.evaluations, 3);
}

TEST(Shrinker, CandidatesAlwaysValidate) {
  // Every candidate the predicate sees must already be validate()-clean.
  const auto result = shrink(noisy_config(), [](const scenario::DumbbellConfig& c) {
    EXPECT_EQ(c.validate(), "");
    return true;
  });
  EXPECT_EQ(result.config.validate(), "");
}

TEST(Shrinker, ShrinksRealFuzzedConfigs) {
  const ScenarioFuzzer fuzzer;
  const auto cfg = fuzzer.make_config(1);
  const auto result =
      shrink(cfg, [](const scenario::DumbbellConfig&) { return true; });
  EXPECT_EQ(result.config.validate(), "");
  EXPECT_LE(sim::to_seconds(result.config.duration),
            sim::to_seconds(cfg.duration));
}

}  // namespace
}  // namespace pi2::check
