// Oracle unit tests: each check must pass on healthy inputs AND detect the
// corruption it exists for (an oracle that can't fail verifies nothing).
#include "check/oracles.hpp"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pi2::check {
namespace {

scenario::DumbbellConfig small_config(scenario::AqmType aqm) {
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = sim::from_seconds(2.0);
  cfg.stats_start = sim::from_seconds(0.5);
  cfg.aqm.type = aqm;
  scenario::TcpFlowSpec flow;
  flow.cc = tcp::CcType::kCubic;
  flow.count = 2;
  flow.base_rtt = sim::from_millis(20);
  cfg.tcp_flows.push_back(flow);
  return cfg;
}

TEST(Oracles, CleanRunPassesAllOracles) {
  const auto outcome = run_case_oracles(small_config(scenario::AqmType::kCoupledPi2), 0);
  for (const auto& f : outcome.failures) {
    ADD_FAILURE() << "[" << f.oracle << "] " << f.detail;
  }
  EXPECT_NE(outcome.digest, 0u);
}

TEST(Oracles, DigestIsDeterministicAcrossRuns) {
  const auto cfg = small_config(scenario::AqmType::kPi2);
  const auto a = run_case_oracles(cfg, 0);
  const auto b = run_case_oracles(cfg, 0);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Oracles, DigestSeesCounterChanges) {
  scenario::RunResult a;
  a.counters.forwarded = 100;
  scenario::RunResult b = a;
  b.counters.forwarded = 101;
  EXPECT_NE(result_digest(a), result_digest(b));
  scenario::RunResult c = a;
  c.mean_qdelay_ms = 1e-9;
  EXPECT_NE(result_digest(a), result_digest(c));
}

TEST(Oracles, InjectedFailureSurfaces) {
  OracleOptions options;
  options.inject_failure = "injected";
  const auto outcome =
      run_case_oracles(small_config(scenario::AqmType::kPie), 3, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.failures.back().oracle, "injected");
}

TEST(Oracles, ConservationDetectsMissingMetrics) {
  // An empty registry means the probe wiring never happened: the oracle must
  // say so rather than silently pass.
  const auto cfg = small_config(scenario::AqmType::kPi2);
  scenario::RunResult result;
  result.counters.forwarded = 10;
  telemetry::MetricsRegistry empty;
  std::vector<OracleFailure> failures;
  check_conservation(cfg, result, empty, failures);
  EXPECT_FALSE(failures.empty());
}

TEST(Oracles, ConservationDetectsCounterDrift) {
  const auto cfg = small_config(scenario::AqmType::kPi2);
  scenario::RunResult result;
  result.counters.enqueued = 50;
  result.counters.forwarded = 10;  // 40 packets unaccounted for
  telemetry::MetricsRegistry registry;
  registry.histogram("link.sojourn_ms");  // count 0 != forwarded 10
  registry.gauge("queue.backlog_packets").set(0.0);
  std::vector<OracleFailure> failures;
  check_conservation(cfg, result, registry, failures);
  bool saw_probe_drift = false;
  bool saw_conservation = false;
  for (const auto& f : failures) {
    if (f.detail.find("departure-probe") != std::string::npos) {
      saw_probe_drift = true;
    }
    if (f.detail.find("slack") != std::string::npos) saw_conservation = true;
  }
  EXPECT_TRUE(saw_probe_drift);
  EXPECT_TRUE(saw_conservation);
}

TEST(Oracles, InvariantsCleanDetectsClampsGuardsAndViolations) {
  const auto cfg = small_config(scenario::AqmType::kPi2);
  {
    scenario::RunResult result;
    result.invariant_checks = 5;
    result.clamped_events = 1;
    std::vector<OracleFailure> failures;
    check_invariants_clean(cfg, result, failures);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].oracle, "invariants");
  }
  {
    scenario::RunResult result;
    result.invariant_checks = 5;
    result.guard_events = 2;
    std::vector<OracleFailure> failures;
    check_invariants_clean(cfg, result, failures);
    EXPECT_EQ(failures.size(), 1u);
  }
  {
    scenario::RunResult result;
    result.invariant_checks = 5;
    result.violations.push_back({sim::from_seconds(1.0), "prob-finite", "p=nan"});
    std::vector<OracleFailure> failures;
    check_invariants_clean(cfg, result, failures);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].detail.find("prob-finite"), std::string::npos);
  }
  {
    // check_invariants enabled but the monitor never ran: suspicious.
    scenario::RunResult result;
    std::vector<OracleFailure> failures;
    check_invariants_clean(cfg, result, failures);
    EXPECT_EQ(failures.size(), 1u);
  }
}

TEST(Oracles, CouplingLawHoldsForCoupledDisciplines) {
  for (const auto type : {scenario::AqmType::kPi2, scenario::AqmType::kCoupledPi2,
                          scenario::AqmType::kCurvyRed}) {
    auto cfg = small_config(type);
    cfg.aqm.coupling_k = 2.0;
    std::vector<OracleFailure> failures;
    check_coupling_law(cfg, failures);
    for (const auto& f : failures) {
      ADD_FAILURE() << scenario::to_string(type) << ": " << f.detail;
    }
  }
}

TEST(Oracles, CouplingLawSkipsUncoupledDisciplines) {
  for (const auto type : {scenario::AqmType::kPie, scenario::AqmType::kFifo,
                          scenario::AqmType::kCodel}) {
    auto cfg = small_config(type);
    std::vector<OracleFailure> failures;
    check_coupling_law(cfg, failures);
    EXPECT_TRUE(failures.empty());
  }
}

TEST(Oracles, CouplingSnapshotDetectsDecoupledGauges) {
  auto cfg = small_config(scenario::AqmType::kCoupledPi2);
  cfg.aqm.coupling_k = 2.0;
  telemetry::MetricsRegistry registry;
  registry.gauge("aqm.p_prime").set(0.4);
  registry.gauge("aqm.p").set(0.04);  // (0.4/2)^2 = 0.04: consistent
  std::vector<OracleFailure> failures;
  check_coupling_snapshot(cfg, registry, failures);
  EXPECT_TRUE(failures.empty());

  registry.gauge("aqm.p").set(0.05);  // decoupled
  check_coupling_snapshot(cfg, registry, failures);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].oracle, "coupling-law");
}

TEST(Oracles, TelemetryRoundtripMatchesAndDetectsDrift) {
  const std::string path = ::testing::TempDir() + "/roundtrip.jsonl";
  telemetry::MetricsRegistry registry;
  registry.counter("x").inc(5);
  registry.gauge("y").set(1.5);

  {
    std::ofstream out{path};
    out << "{\"t_s\": 0.5, \"x\": 2, \"y\": 0.1}\n";
    out << "{\"t_s\": 1.0, \"x\": 5, \"y\": 1.5}\n";
  }
  std::vector<OracleFailure> failures;
  check_telemetry_roundtrip(path, registry, failures);
  for (const auto& f : failures) ADD_FAILURE() << f.detail;

  {
    std::ofstream out{path};
    out << "{\"t_s\": 1.0, \"x\": 6, \"y\": 1.5}\n";  // x drifted
  }
  failures.clear();
  check_telemetry_roundtrip(path, registry, failures);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].detail.find("metric x"), std::string::npos);

  {
    std::ofstream out{path};
    out << "{\"t_s\": 1.0, \"x\": 5}\n";  // y missing
  }
  failures.clear();
  check_telemetry_roundtrip(path, registry, failures);
  EXPECT_FALSE(failures.empty());
}

TEST(Oracles, ScratchDirEnablesTelemetryOracle) {
  OracleOptions options;
  options.scratch_dir = ::testing::TempDir() + "/oracle_scratch";
  options.run_id = "unit";
  const auto outcome =
      run_case_oracles(small_config(scenario::AqmType::kCoupledPi2), 0, options);
  for (const auto& f : outcome.failures) {
    ADD_FAILURE() << "[" << f.oracle << "] " << f.detail;
  }
  // The artifact set must actually exist for the oracle to have run.
  std::ifstream jsonl{options.scratch_dir + "/unit.jsonl"};
  EXPECT_TRUE(jsonl.good());
}

TEST(Oracles, FuzzedCasesAreCleanAtUnitScale) {
  // A miniature of the check_fuzz_smoke ctest, inside the unit suite so a
  // plain `ctest -R test_check` still exercises end-to-end cases.
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto cfg = fuzzer.make_config(i);
    const auto outcome = run_case_oracles(cfg, i);
    for (const auto& f : outcome.failures) {
      ADD_FAILURE() << "case " << i << " ("
                    << ScenarioFuzzer::describe(cfg) << "): [" << f.oracle
                    << "] " << f.detail;
    }
  }
}

}  // namespace
}  // namespace pi2::check
