// ScenarioFuzzer: derivation determinism, validity-by-construction, stream
// independence and parameter-space coverage.
#include "check/fuzzer.hpp"

#include <set>

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pi2::check {
namespace {

TEST(ScenarioFuzzer, SameIndexSameConfig) {
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto a = fuzzer.make_config(i);
    const auto b = fuzzer.make_config(i);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.link_rate_bps, b.link_rate_bps);
    EXPECT_EQ(a.buffer_packets, b.buffer_packets);
    EXPECT_EQ(a.aqm.type, b.aqm.type);
    EXPECT_EQ(a.aqm.coupling_k, b.aqm.coupling_k);
    EXPECT_EQ(a.tcp_flows.size(), b.tcp_flows.size());
    EXPECT_EQ(a.udp_flows.size(), b.udp_flows.size());
    EXPECT_EQ(a.faults.events.size(), b.faults.events.size());
    EXPECT_EQ(ScenarioFuzzer::describe(a), ScenarioFuzzer::describe(b));
  }
}

TEST(ScenarioFuzzer, EveryCaseValidates) {
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto cfg = fuzzer.make_config(i);
    EXPECT_EQ(cfg.validate(), "") << "case " << i;
  }
}

TEST(ScenarioFuzzer, CaseSeedsMatchDeriveSeedAndAreDistinct) {
  FuzzOptions options;
  options.base_seed = 42;
  const ScenarioFuzzer fuzzer{options};
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto cfg = fuzzer.make_config(i);
    EXPECT_EQ(cfg.seed, sim::Rng::derive_seed(42, i));
    seeds.insert(cfg.seed);
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(ScenarioFuzzer, DifferentBaseSeedsDifferentConfigs) {
  FuzzOptions a_options;
  a_options.base_seed = 1;
  FuzzOptions b_options;
  b_options.base_seed = 2;
  const ScenarioFuzzer a{a_options};
  const ScenarioFuzzer b{b_options};
  int differing = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    if (ScenarioFuzzer::describe(a.make_config(i)) !=
        ScenarioFuzzer::describe(b.make_config(i))) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 15);  // near-certain with independent streams
}

TEST(ScenarioFuzzer, CoversTheParameterSpace) {
  const ScenarioFuzzer fuzzer;
  std::set<scenario::AqmType> aqms;
  int with_faults = 0;
  int with_udp = 0;
  int with_tcp = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto cfg = fuzzer.make_config(i);
    aqms.insert(cfg.aqm.type);
    if (!cfg.faults.events.empty()) ++with_faults;
    if (!cfg.udp_flows.empty()) ++with_udp;
    if (!cfg.tcp_flows.empty()) ++with_tcp;
  }
  EXPECT_EQ(aqms.size(), 11u) << "all AqmTypes should appear in 300 draws";
  EXPECT_GT(with_faults, 50);
  EXPECT_GT(with_udp, 50);
  EXPECT_GT(with_tcp, 100);
}

TEST(ScenarioFuzzer, RespectsMaxDurationAndFaultGate) {
  FuzzOptions options;
  options.max_duration_s = 2.0;
  options.allow_faults = false;
  const ScenarioFuzzer fuzzer{options};
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto cfg = fuzzer.make_config(i);
    EXPECT_LE(sim::to_seconds(cfg.duration), 2.0);
    EXPECT_TRUE(cfg.faults.events.empty());
  }
}

TEST(ScenarioFuzzer, ReproCommandNamesSeedAndCase) {
  FuzzOptions options;
  options.base_seed = 7;
  const ScenarioFuzzer fuzzer{options};
  EXPECT_EQ(fuzzer.repro_command(13), "check_fuzz --seed 7 --case 13");
  EXPECT_EQ(fuzzer.topology_repro_command(13),
            "check_fuzz --seed 7 --topo-case 13");
}

TEST(ScenarioFuzzer, TopologyCasesAreDeterministicAndValid) {
  FuzzOptions options;
  options.base_seed = 11;
  const ScenarioFuzzer fuzzer{options};
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto a = fuzzer.make_topology_config(i);
    const auto b = fuzzer.make_topology_config(i);
    EXPECT_EQ(a.validate(), "") << "case " << i;
    EXPECT_EQ(ScenarioFuzzer::describe(a), ScenarioFuzzer::describe(b));
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.seed, sim::Rng::derive_seed(11, (1ull << 32) + i));
    EXPECT_GE(a.links.size(), 2u);
    EXPECT_LE(a.links.size(), 4u);
    EXPECT_FALSE(a.tcp_flows.empty());
  }
}

TEST(ScenarioFuzzer, TopologyStreamIsIndependentOfTheDumbbellStream) {
  // Topology case i draws from a (1<<32)+i-derived seed, so it must not be
  // a re-skin of dumbbell case i.
  FuzzOptions options;
  options.base_seed = 11;
  const ScenarioFuzzer fuzzer{options};
  int same_seed = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    if (fuzzer.make_topology_config(i).seed == fuzzer.make_config(i).seed) {
      ++same_seed;
    }
  }
  EXPECT_EQ(same_seed, 0);
}

TEST(ScenarioFuzzer, TopologyCasesCoverTheMultiHopSpace) {
  FuzzOptions options;
  options.base_seed = 3;
  const ScenarioFuzzer fuzzer{options};
  std::set<std::size_t> hop_counts;
  int with_udp = 0;
  int with_fluid = 0;
  int with_faults = 0;
  std::set<scenario::AqmType> aqms;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto cfg = fuzzer.make_topology_config(i);
    hop_counts.insert(cfg.links.size());
    if (!cfg.udp_flows.empty()) ++with_udp;
    if (!cfg.fluid_flows.empty()) ++with_fluid;
    for (const auto& link : cfg.links) {
      aqms.insert(link.aqm.type);
      if (!link.faults.events.empty()) ++with_faults;
    }
  }
  EXPECT_EQ(hop_counts, (std::set<std::size_t>{2, 3, 4}));
  EXPECT_GT(with_udp, 10);
  EXPECT_GT(with_fluid, 10);
  EXPECT_GT(with_faults, 20);
  EXPECT_GT(aqms.size(), 4u) << "mixed AQMs across links";
}

}  // namespace
}  // namespace pi2::check
