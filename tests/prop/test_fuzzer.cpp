// ScenarioFuzzer: derivation determinism, validity-by-construction, stream
// independence and parameter-space coverage.
#include "check/fuzzer.hpp"

#include <set>

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pi2::check {
namespace {

TEST(ScenarioFuzzer, SameIndexSameConfig) {
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t i = 0; i < 20; ++i) {
    const auto a = fuzzer.make_config(i);
    const auto b = fuzzer.make_config(i);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.link_rate_bps, b.link_rate_bps);
    EXPECT_EQ(a.buffer_packets, b.buffer_packets);
    EXPECT_EQ(a.aqm.type, b.aqm.type);
    EXPECT_EQ(a.aqm.coupling_k, b.aqm.coupling_k);
    EXPECT_EQ(a.tcp_flows.size(), b.tcp_flows.size());
    EXPECT_EQ(a.udp_flows.size(), b.udp_flows.size());
    EXPECT_EQ(a.faults.events.size(), b.faults.events.size());
    EXPECT_EQ(ScenarioFuzzer::describe(a), ScenarioFuzzer::describe(b));
  }
}

TEST(ScenarioFuzzer, EveryCaseValidates) {
  const ScenarioFuzzer fuzzer;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto cfg = fuzzer.make_config(i);
    EXPECT_EQ(cfg.validate(), "") << "case " << i;
  }
}

TEST(ScenarioFuzzer, CaseSeedsMatchDeriveSeedAndAreDistinct) {
  FuzzOptions options;
  options.base_seed = 42;
  const ScenarioFuzzer fuzzer{options};
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto cfg = fuzzer.make_config(i);
    EXPECT_EQ(cfg.seed, sim::Rng::derive_seed(42, i));
    seeds.insert(cfg.seed);
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(ScenarioFuzzer, DifferentBaseSeedsDifferentConfigs) {
  FuzzOptions a_options;
  a_options.base_seed = 1;
  FuzzOptions b_options;
  b_options.base_seed = 2;
  const ScenarioFuzzer a{a_options};
  const ScenarioFuzzer b{b_options};
  int differing = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    if (ScenarioFuzzer::describe(a.make_config(i)) !=
        ScenarioFuzzer::describe(b.make_config(i))) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 15);  // near-certain with independent streams
}

TEST(ScenarioFuzzer, CoversTheParameterSpace) {
  const ScenarioFuzzer fuzzer;
  std::set<scenario::AqmType> aqms;
  int with_faults = 0;
  int with_udp = 0;
  int with_tcp = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const auto cfg = fuzzer.make_config(i);
    aqms.insert(cfg.aqm.type);
    if (!cfg.faults.events.empty()) ++with_faults;
    if (!cfg.udp_flows.empty()) ++with_udp;
    if (!cfg.tcp_flows.empty()) ++with_tcp;
  }
  EXPECT_EQ(aqms.size(), 11u) << "all AqmTypes should appear in 300 draws";
  EXPECT_GT(with_faults, 50);
  EXPECT_GT(with_udp, 50);
  EXPECT_GT(with_tcp, 100);
}

TEST(ScenarioFuzzer, RespectsMaxDurationAndFaultGate) {
  FuzzOptions options;
  options.max_duration_s = 2.0;
  options.allow_faults = false;
  const ScenarioFuzzer fuzzer{options};
  for (std::uint64_t i = 0; i < 100; ++i) {
    const auto cfg = fuzzer.make_config(i);
    EXPECT_LE(sim::to_seconds(cfg.duration), 2.0);
    EXPECT_TRUE(cfg.faults.events.empty());
  }
}

TEST(ScenarioFuzzer, ReproCommandNamesSeedAndCase) {
  FuzzOptions options;
  options.base_seed = 7;
  const ScenarioFuzzer fuzzer{options};
  EXPECT_EQ(fuzzer.repro_command(13), "check_fuzz --seed 7 --case 13");
}

}  // namespace
}  // namespace pi2::check
