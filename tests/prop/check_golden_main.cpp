// check_golden: compares a figure binary's --json output against a committed
// baseline with per-metric relative tolerance bands.
//
//   check_golden [--ignore a,b,c] [--tol-scale X] BASELINE CANDIDATE
//                                            exit 0 iff within bands;
//                                            --ignore skips the named fields
//                                            entirely (cross-engine-tier
//                                            comparisons where counts differ
//                                            by construction); --tol-scale
//                                            widens every relative band by X
//                                            (cross-tier runs agree in shape,
//                                            not to same-engine noise levels)
//   check_golden --self-test BASELINE OUT    perturb a copy of BASELINE into
//                                            OUT; exit 0 iff the comparator
//                                            flags the perturbation
//
// The self-test proves the bands actually bite: a comparator that passes
// everything would make every golden test green forever.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/golden.hpp"

int main(int argc, char** argv) {
  using namespace pi2::check;
  GoldenOptions options = default_golden_options();

  int arg = 1;
  while (arg + 1 < argc) {
    if (std::strcmp(argv[arg], "--ignore") == 0) {
      std::string list = argv[arg + 1];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string field =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!field.empty()) options.ignore_fields.push_back(field);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      arg += 2;
    } else if (std::strcmp(argv[arg], "--tol") == 0) {
      // --tol NAME=V sets an explicit relative band for one metric; used by
      // cross-tier comparisons to declare, per field, how closely the two
      // engine renderings are required to agree.
      const std::string spec = argv[arg + 1];
      const std::size_t eq = spec.find('=');
      const double value =
          eq == std::string::npos ? -1.0 : std::strtod(spec.c_str() + eq + 1,
                                                       nullptr);
      if (eq == std::string::npos || eq == 0 || !(value >= 0.0)) {
        std::printf("check_golden: --tol expects NAME=VALUE with VALUE >= 0\n");
        return 2;
      }
      options.metric_rel_tol[spec.substr(0, eq)] = value;
      arg += 2;
    } else if (std::strcmp(argv[arg], "--tol-scale") == 0) {
      const double scale = std::strtod(argv[arg + 1], nullptr);
      if (!(scale > 0.0)) {
        std::printf("check_golden: --tol-scale needs a value > 0\n");
        return 2;
      }
      options.default_rel_tol *= scale;
      // Zero-width bands stay zero: machinery-health fields (invariant
      // violations, clamped events) are regressions at any scale.
      for (auto& [metric, tol] : options.metric_rel_tol) tol *= scale;
      arg += 2;
    } else {
      break;
    }
  }

  if (argc - arg == 3 && std::strcmp(argv[arg], "--self-test") == 0) {
    const std::string baseline = argv[arg + 1];
    const std::string out = argv[arg + 2];
    const std::string field = write_perturbed_copy(baseline, out, options);
    if (field.empty()) {
      std::printf("self-test: could not perturb %s\n", baseline.c_str());
      return 1;
    }
    const auto mismatches = compare_golden(baseline, out, options);
    if (mismatches.empty()) {
      std::printf("self-test FAILED: perturbed \"%s\" but the comparator saw "
                  "no mismatch\n",
                  field.c_str());
      return 1;
    }
    std::printf("self-test ok: perturbed \"%s\", comparator flagged %zu "
                "mismatch(es):\n",
                field.c_str(), mismatches.size());
    for (const auto& m : mismatches) std::printf("  %s\n", m.c_str());
    return 0;
  }

  if (argc - arg != 2) {
    std::printf(
        "usage: check_golden [--ignore a,b,c] [--tol NAME=V] [--tol-scale X]\n"
        "                    BASELINE CANDIDATE\n"
        "       check_golden --self-test BASELINE OUT\n");
    return 2;
  }

  const auto mismatches = compare_golden(argv[arg], argv[arg + 1], options);
  if (mismatches.empty()) {
    std::printf("golden ok: %s within tolerance of %s\n", argv[arg + 1],
                argv[arg]);
    return 0;
  }
  std::printf("golden MISMATCH (%zu):\n", mismatches.size());
  for (const auto& m : mismatches) std::printf("  %s\n", m.c_str());
  return 1;
}
