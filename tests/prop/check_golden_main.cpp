// check_golden: compares a figure binary's --json output against a committed
// baseline with per-metric relative tolerance bands.
//
//   check_golden BASELINE CANDIDATE          exit 0 iff within bands
//   check_golden --self-test BASELINE OUT    perturb a copy of BASELINE into
//                                            OUT; exit 0 iff the comparator
//                                            flags the perturbation
//
// The self-test proves the bands actually bite: a comparator that passes
// everything would make every golden test green forever.
#include <cstdio>
#include <cstring>
#include <string>

#include "check/golden.hpp"

int main(int argc, char** argv) {
  using namespace pi2::check;
  const GoldenOptions options = default_golden_options();

  if (argc == 4 && std::strcmp(argv[1], "--self-test") == 0) {
    const std::string baseline = argv[2];
    const std::string out = argv[3];
    const std::string field = write_perturbed_copy(baseline, out, options);
    if (field.empty()) {
      std::printf("self-test: could not perturb %s\n", baseline.c_str());
      return 1;
    }
    const auto mismatches = compare_golden(baseline, out, options);
    if (mismatches.empty()) {
      std::printf("self-test FAILED: perturbed \"%s\" but the comparator saw "
                  "no mismatch\n",
                  field.c_str());
      return 1;
    }
    std::printf("self-test ok: perturbed \"%s\", comparator flagged %zu "
                "mismatch(es):\n",
                field.c_str(), mismatches.size());
    for (const auto& m : mismatches) std::printf("  %s\n", m.c_str());
    return 0;
  }

  if (argc != 3) {
    std::printf("usage: check_golden BASELINE CANDIDATE\n"
                "       check_golden --self-test BASELINE OUT\n");
    return 2;
  }

  const auto mismatches = compare_golden(argv[1], argv[2], options);
  if (mismatches.empty()) {
    std::printf("golden ok: %s within tolerance of %s\n", argv[2], argv[1]);
    return 0;
  }
  std::printf("golden MISMATCH (%zu):\n", mismatches.size());
  for (const auto& m : mismatches) std::printf("  %s\n", m.c_str());
  return 1;
}
