// Golden comparator: the flat-JSON parser, tolerance bands, exact fields
// and the self-test perturbation.
#include "check/golden.hpp"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace pi2::check {
namespace {

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out{path};
  out << text;
  return path;
}

TEST(GoldenParser, ParsesFlatObjects) {
  JsonRecord record;
  std::string error;
  ASSERT_TRUE(parse_flat_object(
      R"({"a": 1.5, "b": "text", "c": -2e3, "d": true, "e": "q\"uote"})",
      &record, &error))
      << error;
  EXPECT_DOUBLE_EQ(record.numbers.at("a"), 1.5);
  EXPECT_EQ(record.strings.at("b"), "text");
  EXPECT_DOUBLE_EQ(record.numbers.at("c"), -2000.0);
  EXPECT_DOUBLE_EQ(record.numbers.at("d"), 1.0);
  EXPECT_EQ(record.strings.at("e"), "q\"uote");
}

TEST(GoldenParser, RejectsNestedValuesAndGarbage) {
  JsonRecord record;
  std::string error;
  EXPECT_FALSE(parse_flat_object(R"({"a": {"nested": 1}})", &record, &error));
  EXPECT_FALSE(parse_flat_object(R"({"a": [1, 2]})", &record, &error));
  EXPECT_FALSE(parse_flat_object(R"({"a" 1})", &record, &error));
  EXPECT_FALSE(parse_flat_object("not json", &record, &error));
}

TEST(GoldenParser, ParsesRecordArrays) {
  const std::string path = write_temp(
      "records.json",
      R"([
  {"index": 0, "status": "ok", "utilization": 0.95},
  {"index": 1, "status": "failed", "error": "boom"}
])");
  std::string error;
  const auto records = parse_records(path, &error);
  ASSERT_EQ(error, "");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].numbers.at("utilization"), 0.95);
  EXPECT_EQ(records[1].strings.at("error"), "boom");
}

TEST(GoldenCompare, IdenticalFilesMatch) {
  const std::string text =
      R"([{"index": 0, "aqm": "pi2", "utilization": 0.9, "mean_qdelay_ms": 20}])";
  const auto a = write_temp("base_eq.json", text);
  const auto b = write_temp("cand_eq.json", text);
  EXPECT_TRUE(compare_golden(a, b, default_golden_options()).empty());
}

TEST(GoldenCompare, WithinBandPassesOutsideFails) {
  const auto base = write_temp(
      "base_tol.json", R"([{"index": 0, "aqm": "pi2", "utilization": 0.90}])");
  // utilization band is 5%: 0.92 passes, 0.80 fails.
  const auto near = write_temp(
      "cand_near.json", R"([{"index": 0, "aqm": "pi2", "utilization": 0.92}])");
  const auto far = write_temp(
      "cand_far.json", R"([{"index": 0, "aqm": "pi2", "utilization": 0.80}])");
  const auto options = default_golden_options();
  EXPECT_TRUE(compare_golden(base, near, options).empty());
  const auto mismatches = compare_golden(base, far, options);
  ASSERT_EQ(mismatches.size(), 1u);
  EXPECT_NE(mismatches[0].find("utilization"), std::string::npos);
}

TEST(GoldenCompare, ZeroBaselineUsesAbsoluteFloor) {
  const auto base = write_temp(
      "base_zero.json", R"([{"index": 0, "invariant_violations": 0}])");
  const auto dirty = write_temp(
      "cand_dirty.json", R"([{"index": 0, "invariant_violations": 1}])");
  EXPECT_FALSE(compare_golden(base, dirty, default_golden_options()).empty());
}

TEST(GoldenCompare, ExactFieldsAdmitNoTolerance) {
  const auto base =
      write_temp("base_exact.json", R"([{"index": 0, "link_mbps": 40}])");
  const auto drifted =
      write_temp("cand_exact.json", R"([{"index": 0, "link_mbps": 40.0001}])");
  EXPECT_FALSE(compare_golden(base, drifted, default_golden_options()).empty());
}

TEST(GoldenCompare, FlagsStructuralDifferences) {
  const auto base = write_temp(
      "base_struct.json",
      R"([{"index": 0, "aqm": "pi2", "utilization": 0.9}, {"index": 1, "aqm": "pie", "utilization": 0.8}])");
  const auto options = default_golden_options();
  // Missing record.
  const auto fewer = write_temp(
      "cand_fewer.json", R"([{"index": 0, "aqm": "pi2", "utilization": 0.9}])");
  EXPECT_FALSE(compare_golden(base, fewer, options).empty());
  // Renamed string field value.
  const auto renamed = write_temp(
      "cand_renamed.json",
      R"([{"index": 0, "aqm": "pie", "utilization": 0.9}, {"index": 1, "aqm": "pie", "utilization": 0.8}])");
  EXPECT_FALSE(compare_golden(base, renamed, options).empty());
  // Missing + extra numeric field.
  const auto reshaped = write_temp(
      "cand_reshaped.json",
      R"([{"index": 0, "aqm": "pi2", "extra": 1}, {"index": 1, "aqm": "pie", "utilization": 0.8}])");
  const auto mismatches = compare_golden(base, reshaped, options);
  EXPECT_EQ(mismatches.size(), 2u);  // utilization missing, extra extra
  // Non-finite candidate value.
  const auto poisoned = write_temp(
      "cand_nan.json",
      R"([{"index": 0, "aqm": "pi2", "utilization": nan}, {"index": 1, "aqm": "pie", "utilization": 0.8}])");
  EXPECT_FALSE(compare_golden(base, poisoned, options).empty());
}

TEST(GoldenSelfTest, PerturbedCopyIsFlagged) {
  const auto base = write_temp(
      "base_selftest.json",
      R"([{"index": 0, "aqm": "pi2", "seed": 1, "utilization": 0.9, "mean_qdelay_ms": 21.5}])");
  const std::string out = ::testing::TempDir() + "/perturbed.json";
  const auto options = default_golden_options();
  const std::string field = write_perturbed_copy(base, out, options);
  ASSERT_FALSE(field.empty());
  EXPECT_NE(field, "index");  // exact/structural fields are never the target
  EXPECT_NE(field, "seed");
  const auto mismatches = compare_golden(base, out, options);
  ASSERT_FALSE(mismatches.empty());
  bool names_field = false;
  for (const auto& m : mismatches) {
    if (m.find(field) != std::string::npos) names_field = true;
  }
  EXPECT_TRUE(names_field);
}

}  // namespace
}  // namespace pi2::check
