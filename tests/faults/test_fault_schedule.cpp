#include "faults/fault_schedule.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pi2::faults {
namespace {

using pi2::sim::from_millis;
using pi2::sim::from_seconds;
using pi2::sim::Time;

TEST(FaultSchedule, BuildersChainAndPopulateEvents) {
  FaultSchedule s;
  s.rate_step(from_seconds(10), 10e6)
      .rate_flap(from_seconds(20), from_seconds(30), 5e6, 40e6, from_seconds(1))
      .rtt_step(from_seconds(15), from_millis(80))
      .burst_loss(from_seconds(5), 25)
      .random_loss(from_seconds(1), from_seconds(2), 0.01)
      .ecn_bleach(from_seconds(3), from_seconds(4), 0.5)
      .reorder(from_seconds(6), from_seconds(7), 0.02, from_millis(5));
  ASSERT_EQ(s.events.size(), 7u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kRateStep);
  EXPECT_DOUBLE_EQ(s.events[0].rate_bps, 10e6);
  EXPECT_EQ(s.events[1].kind, FaultKind::kRateFlap);
  EXPECT_DOUBLE_EQ(s.events[1].rate2_bps, 40e6);
  EXPECT_EQ(s.events[2].rtt, from_millis(80));
  EXPECT_EQ(s.events[3].burst_packets, 25);
  EXPECT_DOUBLE_EQ(s.events[4].probability, 0.01);
  EXPECT_EQ(s.events[6].extra_delay, from_millis(5));
  EXPECT_EQ(s.validate(), "");
}

TEST(FaultSchedule, PacketFaultDetection) {
  FaultSchedule state_only;
  state_only.rate_step(from_seconds(1), 1e6).rtt_step(from_seconds(2), from_millis(10));
  EXPECT_FALSE(state_only.has_packet_faults());

  FaultSchedule with_loss = state_only;
  with_loss.random_loss(from_seconds(1), from_seconds(2), 0.1);
  EXPECT_TRUE(with_loss.has_packet_faults());

  FaultSchedule with_bleach;
  with_bleach.ecn_bleach(from_seconds(1), from_seconds(2), 1.0);
  EXPECT_TRUE(with_bleach.has_packet_faults());
}

TEST(FaultSchedule, EmptyScheduleIsValid) {
  EXPECT_TRUE(FaultSchedule{}.empty());
  EXPECT_EQ(FaultSchedule{}.validate(), "");
}

TEST(FaultSchedule, ValidateNamesOffendingEventAndField) {
  FaultSchedule s;
  s.rate_step(from_seconds(1), 10e6);   // fine
  s.rate_step(from_seconds(2), 0.0);    // broken: rate must be > 0
  const std::string msg = s.validate();
  EXPECT_NE(msg.find("fault event #1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rate-step"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rate_bps"), std::string::npos) << msg;
}

TEST(FaultSchedule, ValidateRejectsNegativeStart) {
  FaultSchedule s;
  s.rate_step(Time{-1}, 10e6);
  EXPECT_NE(s.validate().find("cannot target the past"), std::string::npos);
}

TEST(FaultSchedule, ValidateRejectsEmptyWindow) {
  FaultSchedule s;
  s.random_loss(from_seconds(5), from_seconds(5), 0.1);
  EXPECT_NE(s.validate().find("empty window"), std::string::npos);
}

TEST(FaultSchedule, ValidateRejectsOutOfRangeProbability) {
  for (const double p : {0.0, -0.5, 1.5}) {
    FaultSchedule s;
    s.random_loss(from_seconds(1), from_seconds(2), p);
    EXPECT_NE(s.validate().find("probability"), std::string::npos) << p;
  }
}

TEST(FaultSchedule, ValidateRejectsBadKindSpecificFields) {
  FaultSchedule flap;
  flap.rate_flap(from_seconds(1), from_seconds(2), 1e6, 2e6, from_seconds(0));
  EXPECT_NE(flap.validate().find("period"), std::string::npos);

  FaultSchedule rtt;
  rtt.rtt_step(from_seconds(1), from_millis(0));
  EXPECT_NE(rtt.validate().find("rtt"), std::string::npos);

  FaultSchedule burst;
  burst.burst_loss(from_seconds(1), 0);
  EXPECT_NE(burst.validate().find("burst_packets"), std::string::npos);

  FaultSchedule reorder;
  reorder.reorder(from_seconds(1), from_seconds(2), 0.1, from_millis(0));
  EXPECT_NE(reorder.validate().find("extra_delay"), std::string::npos);
}

TEST(FaultSchedule, ValidateRejectsEventPastDuration) {
  FaultSchedule s;
  s.rate_step(from_seconds(5), 10e6);
  s.rate_step(from_seconds(30), 10e6);  // run only lasts 20 s
  EXPECT_EQ(s.validate(), "");
  const std::string msg = s.validate(from_seconds(20));
  EXPECT_NE(msg.find("fault event #1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("`at` must be < duration_s"), std::string::npos) << msg;
}

TEST(FaultSchedule, ValidateAcceptsEventJustBeforeDuration) {
  FaultSchedule s;
  s.rate_step(from_seconds(19), 10e6);
  EXPECT_EQ(s.validate(from_seconds(20)), "");
}

TEST(FaultSchedule, ValidateRejectsZeroDurationWindow) {
  FaultSchedule s;
  s.ecn_bleach(from_seconds(5), from_seconds(5), 1.0);
  const std::string msg = s.validate(from_seconds(20));
  EXPECT_NE(msg.find("fault event #0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("`until` must be after `at`"), std::string::npos) << msg;
}

TEST(FaultSchedule, ValidateRejectsOverlappingSameKindWindows) {
  FaultSchedule s;
  s.random_loss(from_seconds(2), from_seconds(8), 0.01);
  s.random_loss(from_seconds(6), from_seconds(12), 0.02);
  EXPECT_EQ(s.validate(), "");  // base form has no overlap rule
  const std::string msg = s.validate(from_seconds(20));
  EXPECT_NE(msg.find("fault event #1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("overlaps fault event #0"), std::string::npos) << msg;
}

TEST(FaultSchedule, ValidateAcceptsOverlapAcrossDifferentKinds) {
  FaultSchedule s;
  s.random_loss(from_seconds(2), from_seconds(8), 0.01);
  s.ecn_bleach(from_seconds(4), from_seconds(10), 1.0);
  EXPECT_EQ(s.validate(from_seconds(20)), "");
}

TEST(FaultSchedule, ValidateAcceptsDisjointSameKindWindows) {
  FaultSchedule s;
  s.random_loss(from_seconds(2), from_seconds(5), 0.01);
  s.random_loss(from_seconds(5), from_seconds(8), 0.02);
  EXPECT_EQ(s.validate(from_seconds(20)), "");
}

}  // namespace
}  // namespace pi2::faults
