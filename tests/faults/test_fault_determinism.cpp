// Determinism of fault injection: a FaultSchedule draws its randomness from
// a dedicated stream derived from the run seed, so the same schedule + seed
// must produce byte-identical runs regardless of how many worker threads
// the sweep fans out over (--jobs invariance), and the impairments must
// actually land (non-zero injector counters) without tripping a single
// invariant.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runner/parallel_runner.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/rng.hpp"

namespace pi2::faults {
namespace {

using pi2::sim::from_millis;
using pi2::sim::from_seconds;

scenario::DumbbellConfig faulted_config(std::uint64_t seed) {
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = from_seconds(8);
  cfg.stats_start = from_seconds(2);
  cfg.seed = seed;
  cfg.aqm.type = scenario::AqmType::kCoupledPi2;
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = from_millis(30);
  scenario::TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.base_rtt = from_millis(30);
  cfg.tcp_flows = {cubic, dctcp};
  // One event of every kind, overlapping windows included.
  cfg.faults.rate_step(from_seconds(3), 4e6)
      .rate_flap(from_seconds(4), from_seconds(6), 2e6, 10e6, from_millis(500))
      .rtt_step(from_seconds(5), from_millis(60))
      .burst_loss(from_seconds(2), 10)
      .random_loss(from_seconds(2.5), from_seconds(3.5), 0.02)
      .ecn_bleach(from_seconds(4), from_seconds(6), 0.3)
      .reorder(from_seconds(6), from_seconds(7), 0.05, from_millis(2));
  return cfg;
}

/// Everything observable about a run, compared bitwise (exact double
/// equality on purpose).
struct RunDigest {
  std::uint64_t events_executed;
  std::uint64_t clamped_events;
  std::uint64_t violations;
  std::int64_t enqueued, forwarded, aqm_dropped, tail_dropped, marked;
  std::int64_t fault_dropped, dequeue_dropped;
  std::int64_t injected_drops, bleached, reordered, rate_changes, rtt_changes;
  std::vector<double> qdelay_series;
  std::vector<double> flow_goodputs;

  bool operator==(const RunDigest&) const = default;
};

RunDigest digest(const scenario::RunResult& r) {
  RunDigest d{};
  d.events_executed = r.events_executed;
  d.clamped_events = r.clamped_events;
  d.violations = r.violations.size();
  d.enqueued = r.counters.enqueued;
  d.forwarded = r.counters.forwarded;
  d.aqm_dropped = r.counters.aqm_dropped;
  d.tail_dropped = r.counters.tail_dropped;
  d.marked = r.counters.marked;
  d.fault_dropped = r.counters.fault_dropped;
  d.dequeue_dropped = r.counters.dequeue_dropped;
  d.injected_drops = r.fault_counters.dropped;
  d.bleached = r.fault_counters.bleached;
  d.reordered = r.fault_counters.reordered;
  d.rate_changes = r.fault_counters.rate_changes;
  d.rtt_changes = r.fault_counters.rtt_changes;
  for (const auto& p : r.qdelay_ms_series.points()) {
    d.qdelay_series.push_back(p.value);
  }
  for (const auto& f : r.flows) d.flow_goodputs.push_back(f.goodput_mbps);
  return d;
}

std::vector<RunDigest> run_points(unsigned jobs, std::size_t count) {
  std::vector<RunDigest> digests(count);
  runner::ParallelRunner pool{jobs};
  pool.run_ordered<scenario::RunResult>(
      count,
      [](std::size_t i) {
        return run_dumbbell(faulted_config(sim::Rng::derive_seed(7, i)));
      },
      [&](std::size_t i, scenario::RunResult&& r) { digests[i] = digest(r); });
  return digests;
}

TEST(FaultDeterminism, Jobs1VersusJobs8ByteIdentical) {
  const auto serial = run_points(1, 6);
  const auto parallel = run_points(8, 6);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "faulted point " << i << " diverged";
  }
}

TEST(FaultDeterminism, SameScheduleAndSeedRepeatsExactly) {
  const auto a = digest(run_dumbbell(faulted_config(42)));
  const auto b = digest(run_dumbbell(faulted_config(42)));
  EXPECT_EQ(a, b);
}

TEST(FaultDeterminism, DifferentSeedsDrawDifferentImpairments) {
  const auto a = digest(run_dumbbell(faulted_config(1)));
  const auto b = digest(run_dumbbell(faulted_config(2)));
  EXPECT_NE(a.qdelay_series, b.qdelay_series);
}

TEST(FaultDeterminism, EveryImpairmentKindActuallyLands) {
  const auto r = run_dumbbell(faulted_config(3));
  const auto& f = r.fault_counters;
  EXPECT_GE(f.dropped, 10);  // at least the burst
  EXPECT_GT(f.bleached, 0);
  EXPECT_GT(f.reordered, 0);
  // rate_step + flap toggles over a 2 s window at 500 ms, + final restore.
  EXPECT_GE(f.rate_changes, 4);
  EXPECT_EQ(f.rtt_changes, 1);
  EXPECT_EQ(r.counters.fault_dropped, f.dropped);
}

TEST(FaultDeterminism, FaultedRunStaysInvariantClean) {
  const auto r = run_dumbbell(faulted_config(5));
  EXPECT_EQ(r.clamped_events, 0u);
  EXPECT_TRUE(r.violations.empty());
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_EQ(r.guard_events, 0u);
}

}  // namespace
}  // namespace pi2::faults
