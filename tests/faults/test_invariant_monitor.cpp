#include "faults/invariant_monitor.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>

#include "net/bottleneck_link.hpp"
#include "net/queue_discipline.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"

namespace pi2::faults {
namespace {

using pi2::sim::from_millis;
using pi2::sim::from_seconds;
using pi2::sim::Simulator;
using pi2::sim::Time;

/// Test-only discipline whose introspection values the test scripts —
/// deliberately returning NaN or counting fake guard trips so the monitor's
/// detection paths can be exercised without corrupting a real controller.
class ScriptedAqm final : public net::QueueDiscipline {
 public:
  double classic_prob = 0.05;
  double scalable_prob = 0.05;
  std::uint64_t guards = 0;

  Verdict enqueue(const net::Packet&) override { return Verdict::kAccept; }
  [[nodiscard]] double classic_probability() const override {
    return classic_prob;
  }
  [[nodiscard]] double scalable_probability() const override {
    return scalable_prob;
  }
  [[nodiscard]] std::uint64_t guard_events() const override { return guards; }
};

struct Fixture {
  Simulator sim{1};
  ScriptedAqm* aqm;
  net::BottleneckLink link;

  Fixture()
      : link{sim, net::BottleneckLink::Config{}, [this] {
               auto owned = std::make_unique<ScriptedAqm>();
               aqm = owned.get();
               return owned;
             }()} {}
};

TEST(InvariantMonitor, HealthyLinkPassesEveryCheck) {
  Fixture f;
  for (int i = 0; i < 20; ++i) f.link.send(testing::make_data_packet());
  f.sim.run();
  InvariantMonitor monitor{f.sim, f.link};
  monitor.check_now();
  EXPECT_TRUE(monitor.ok()) << monitor.report();
  EXPECT_EQ(monitor.checks_run(), 1u);
  EXPECT_EQ(monitor.report(), "");
}

TEST(InvariantMonitor, CatchesNaNProbability) {
  // The deliberately-injected NaN of the ISSUE's acceptance test: a broken
  // controller must be caught by the monitor, not surface as a subtly wrong
  // table entry hours later.
  Fixture f;
  f.aqm->classic_prob = std::numeric_limits<double>::quiet_NaN();
  InvariantMonitor monitor{f.sim, f.link};
  monitor.check_now();
  ASSERT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].check, "prob-classic");
  EXPECT_NE(monitor.violations()[0].detail.find("nan"), std::string::npos);
}

TEST(InvariantMonitor, CatchesOutOfRangeProbability) {
  Fixture f;
  f.aqm->scalable_prob = 1.5;
  InvariantMonitor monitor{f.sim, f.link};
  monitor.check_now();
  ASSERT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].check, "prob-scalable");
  EXPECT_NE(monitor.violations()[0].detail.find("outside [0, 1]"),
            std::string::npos);
}

TEST(InvariantMonitor, CatchesControllerGuardTrips) {
  Fixture f;
  InvariantMonitor monitor{f.sim, f.link};
  monitor.check_now();
  EXPECT_TRUE(monitor.ok());
  f.aqm->guards = 3;
  monitor.check_now();
  ASSERT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].check, "controller-guard");
  // The delta is only reported once; a quiet follow-up check stays clean.
  const auto before = monitor.total_violations();
  monitor.check_now();
  EXPECT_EQ(monitor.total_violations(), before);
}

TEST(InvariantMonitor, CatchesEventsClampedToThePast) {
  Fixture f;
  f.sim.at(Time{1000}, [] {});
  f.sim.run();
  InvariantMonitor monitor{f.sim, f.link};
  monitor.check_now();
  EXPECT_TRUE(monitor.ok());
  f.sim.at(Time{10}, [] {});  // now = 1000: clamped
  monitor.check_now();
  ASSERT_FALSE(monitor.ok());
  EXPECT_EQ(monitor.violations()[0].check, "clamped-events");
}

TEST(InvariantMonitor, PacketConservationHoldsMidRun) {
  Fixture f;
  for (int i = 0; i < 50; ++i) f.link.send(testing::make_data_packet());
  InvariantMonitor monitor{f.sim, f.link};
  // Check with packets queued and one serializing, not just at quiescence.
  monitor.check_now();
  f.sim.run_until(f.sim.now() + from_millis(1));
  monitor.check_now();
  f.sim.run();
  monitor.check_now();
  EXPECT_TRUE(monitor.ok()) << monitor.report();
}

TEST(InvariantMonitor, StartSamplesPeriodically) {
  Fixture f;
  InvariantMonitor::Config cfg;
  cfg.interval = from_millis(100);
  InvariantMonitor monitor{f.sim, f.link, cfg};
  monitor.start();
  f.sim.run_until(from_seconds(1.05));
  EXPECT_EQ(monitor.checks_run(), 10u);
}

TEST(InvariantMonitor, ReportCapsStoredViolationsButCountsAll) {
  Fixture f;
  f.aqm->classic_prob = std::numeric_limits<double>::quiet_NaN();
  InvariantMonitor::Config cfg;
  cfg.max_reports = 2;
  InvariantMonitor monitor{f.sim, f.link, cfg};
  for (int i = 0; i < 5; ++i) monitor.check_now();
  EXPECT_EQ(monitor.violations().size(), 2u);
  EXPECT_EQ(monitor.total_violations(), 5u);
  const std::string report = monitor.report();
  EXPECT_NE(report.find("5 total"), std::string::npos) << report;
  EXPECT_NE(report.find("prob-classic"), std::string::npos) << report;
}

}  // namespace
}  // namespace pi2::faults
