#include "faults/fault_presets.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pi2::faults {
namespace {

using pi2::sim::from_millis;
using pi2::sim::from_seconds;
using pi2::sim::to_seconds;

PresetContext ctx_20s() {
  PresetContext ctx;
  ctx.link_bps = 10e6;
  ctx.base_rtt = from_millis(100);
  ctx.duration = from_seconds(20);
  return ctx;
}

TEST(FaultPresets, NamesAreStableAndRecognized) {
  const auto& names = preset_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "none");
  for (const std::string& name : names) {
    EXPECT_TRUE(is_preset(name)) << name;
    FaultSchedule s;
    EXPECT_EQ(preset(name, ctx_20s(), &s), "") << name;
    EXPECT_EQ(s.validate(ctx_20s().duration), "") << name;
  }
  EXPECT_FALSE(is_preset("rate_step_5x"));
}

TEST(FaultPresets, NoneIsEmpty) {
  FaultSchedule s;
  ASSERT_EQ(preset("none", ctx_20s(), &s), "");
  EXPECT_TRUE(s.empty());
}

TEST(FaultPresets, RateStepScalesToLinkAndDuration) {
  FaultSchedule s;
  ASSERT_EQ(preset("rate_step_4x", ctx_20s(), &s), "");
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kRateStep);
  EXPECT_EQ(s.events[0].at, from_seconds(0.4 * 20));
  EXPECT_DOUBLE_EQ(s.events[0].rate_bps, 2.5e6);  // link/4
  EXPECT_EQ(s.events[1].at, from_seconds(0.7 * 20));
  EXPECT_DOUBLE_EQ(s.events[1].rate_bps, 10e6);  // restore
}

TEST(FaultPresets, RttFlapScalesToBaseRtt) {
  FaultSchedule s;
  ASSERT_EQ(preset("rtt_flap", ctx_20s(), &s), "");
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kRttStep);
  EXPECT_EQ(s.events[0].rtt, from_millis(300));  // 3x base
  EXPECT_EQ(s.events[1].rtt, from_millis(100));  // restore
}

TEST(FaultPresets, UnknownPresetNamesTheKnownOnes) {
  FaultSchedule s;
  const std::string msg = preset("nope", ctx_20s(), &s);
  EXPECT_NE(msg.find("unknown fault preset 'nope'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rate_step_4x"), std::string::npos) << msg;
}

TEST(FaultPresets, ResolveParsesInlineLiteral) {
  FaultSchedule s;
  ASSERT_EQ(resolve_schedule("rate_step@0.5:rate=0.5;random_loss@0.1..0.3:p=0.01",
                             ctx_20s(), &s),
            "");
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].at, from_seconds(10));
  EXPECT_DOUBLE_EQ(s.events[0].rate_bps, 5e6);
  EXPECT_EQ(s.events[1].kind, FaultKind::kRandomLoss);
  EXPECT_EQ(s.events[1].at, from_seconds(2));
  EXPECT_EQ(s.events[1].until, from_seconds(6));
  EXPECT_DOUBLE_EQ(s.events[1].probability, 0.01);
}

TEST(FaultPresets, LiteralDefaultsApplyWhenParamsOmitted) {
  FaultSchedule s;
  ASSERT_EQ(resolve_schedule("reorder@0.2..0.4", ctx_20s(), &s), "");
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_DOUBLE_EQ(s.events[0].probability, 0.05);
  EXPECT_EQ(s.events[0].extra_delay, from_millis(5));
}

TEST(FaultPresets, LiteralErrorsNameTheEventAndConstraint) {
  FaultSchedule s;
  const struct {
    const char* literal;
    const char* needle;
  } cases[] = {
      {"bogus@0.5", "unknown kind 'bogus'"},
      // A bare name with no '@' routes to the preset branch (see
      // ResolveRejectsNonLiteralNonPreset); a missing '@' inside a literal
      // names the event that lacks it.
      {"rate_step@0.2:rate=0.5;oops", "event #1: expected `kind@start`"},
      {"rate_step@1.5", "`start` must be a duration fraction in [0, 1)"},
      {"random_loss@0.5", "needs a window"},
      {"rate_step@0.2..0.4", "takes a single `@start` time"},
      {"random_loss@0.4..0.2:p=0.01", "`end` must be a duration fraction"},
      {"rate_step@0.5:speed=2", "has no key 'speed'"},
      {"rate_step@0.5:rate=fast", "`rate` must be a number"},
      {"rate_step@0.5:rate=0", "`rate_bps` must be > 0"},
  };
  for (const auto& c : cases) {
    const std::string msg = resolve_schedule(c.literal, ctx_20s(), &s);
    EXPECT_NE(msg.find(c.needle), std::string::npos)
        << c.literal << " -> " << msg;
  }
}

TEST(FaultPresets, ResolveRejectsNonLiteralNonPreset) {
  FaultSchedule s;
  const std::string msg = resolve_schedule("gibberish", ctx_20s(), &s);
  EXPECT_NE(msg.find("unknown fault preset 'gibberish'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("inline literal"), std::string::npos) << msg;
}

TEST(FaultPresets, WindowsMergeOverlapsAndClampToDuration) {
  FaultSchedule s;
  s.random_loss(from_seconds(2), from_seconds(6), 0.01);
  s.ecn_bleach(from_seconds(4), from_seconds(10), 1.0);  // overlaps the loss
  s.rate_step(from_seconds(15), 5e6);
  const auto windows = fault_windows(s, from_seconds(20));
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(windows[0].end_s, 10.0);  // merged
  EXPECT_DOUBLE_EQ(windows[1].start_s, 15.0);
  EXPECT_DOUBLE_EQ(windows[1].end_s, 15.0);  // instantaneous

  FaultSchedule past;
  past.reorder(from_seconds(18), from_seconds(30), 0.05, from_millis(5));
  const auto clamped = fault_windows(past, from_seconds(20));
  ASSERT_EQ(clamped.size(), 1u);
  EXPECT_DOUBLE_EQ(clamped[0].end_s, 20.0);  // clamped to the run
}

TEST(FaultPresets, WindowsOfInstantaneousPresetAreZeroWidth) {
  FaultSchedule s;
  ASSERT_EQ(preset("rate_step_4x", ctx_20s(), &s), "");
  const auto windows = fault_windows(s, from_seconds(20));
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].start_s, 8.0);
  EXPECT_DOUBLE_EQ(windows[0].end_s, 8.0);
  EXPECT_DOUBLE_EQ(windows[1].start_s, 14.0);
  EXPECT_DOUBLE_EQ(windows[1].end_s, 14.0);
}

}  // namespace
}  // namespace pi2::faults
