// Campaign spec language: parse/validate/expand/serialize must round-trip,
// enumerate row-major like the fig binaries' loops, and reject malformed
// specs with one exact message each (TopologyConfig::validate house style).
// The property sweep runs the check-layer oracles over the committed
// campaigns/*.json files and a fuzz batch of generated specs.
#include "campaign/spec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "campaign/merge.hpp"
#include "check/campaign_oracle.hpp"
#include "sim/rng.hpp"

namespace pi2::campaign {
namespace {

/// The committed fig15 sweep grid, inline (the on-disk copies are covered by
/// the SpecFiles tests below).
CampaignSpec sweep_spec() {
  CampaignSpec spec;
  spec.name = "fig15";
  spec.template_name = "dumbbell_sweep";
  spec.seed = 1;
  Axis aqm;
  aqm.name = "aqm";
  aqm.cap = false;
  aqm.values = {axis_text("pie"), axis_text("coupled-pi2")};
  Axis mix;
  mix.name = "cc_mix";
  mix.cap = false;
  mix.values = {axis_text("cubic/ecn-cubic"), axis_text("cubic/dctcp")};
  Axis rate;
  rate.name = "rate_mbps";
  rate.values = {axis_number(4), axis_number(40), axis_number(120)};
  rate.full_values = {axis_number(4), axis_number(12), axis_number(40),
                      axis_number(120), axis_number(200)};
  Axis rtt;
  rtt.name = "rtt_ms";
  rtt.values = {axis_number(5), axis_number(20), axis_number(100)};
  rtt.full_values = {axis_number(5), axis_number(10), axis_number(20),
                     axis_number(50), axis_number(100)};
  spec.axes = {aqm, mix, rate, rtt};
  return spec;
}

CampaignSpec overload_spec() {
  CampaignSpec spec;
  spec.name = "fig_overload";
  spec.template_name = "overload";
  spec.seed = 1;
  Axis ecn;
  ecn.name = "ecn";
  ecn.values = {axis_text("not-ect"), axis_text("ect1"), axis_text("ect0")};
  Axis udp;
  udp.name = "udp_mult";
  udp.values = {axis_number(2), axis_number(1), axis_number(0.5),
                axis_number(1.5)};
  spec.axes = {ecn, udp};
  return spec;
}

CampaignSpec resilience_spec() {
  CampaignSpec spec;
  spec.name = "fig_resilience";
  spec.template_name = "resilience";
  spec.seed = 1;
  Axis aqm;
  aqm.name = "aqm";
  aqm.cap = false;
  aqm.values = {axis_text("coupled-pi2"), axis_text("dualpi2"),
                axis_text("pie")};
  Axis fault;
  fault.name = "fault_schedule";
  fault.cap = false;
  fault.values = {axis_text("rate_step_4x"), axis_text("rtt_flap"),
                  axis_text("burst_loss_2pct"), axis_text("ecn_bleach"),
                  axis_text("reorder")};
  Axis fluid;
  fluid.name = "fluid_flows";
  fluid.values = {axis_number(0), axis_number(1000), axis_number(100000)};
  spec.axes = {aqm, fault, fluid};
  return spec;
}

std::string validate_parsed(const std::string& json) {
  CampaignSpec spec;
  const std::string parse_err = parse_spec(json, spec);
  if (!parse_err.empty()) return parse_err;
  return spec.validate();
}

TEST(CampaignSpec, ValidSpecsValidateClean) {
  EXPECT_EQ(sweep_spec().validate(), "");
  EXPECT_EQ(overload_spec().validate(), "");
  EXPECT_EQ(resilience_spec().validate(), "");
}

TEST(CampaignSpec, ResilienceExpandsRowMajorWithFluidFastest) {
  const Expansion x = expand(resilience_spec(), ExpandOptions{});
  ASSERT_EQ(x.points.size(), 3u * 5u * 3u);
  EXPECT_EQ(x.text(x.points[0], "aqm"), "coupled-pi2");
  EXPECT_EQ(x.text(x.points[0], "fault_schedule"), "rate_step_4x");
  EXPECT_EQ(x.number(x.points[0], "fluid_flows"), 0.0);
  EXPECT_EQ(x.number(x.points[1], "fluid_flows"), 1000.0);
  EXPECT_EQ(x.number(x.points[2], "fluid_flows"), 100000.0);
  EXPECT_EQ(x.text(x.points[3], "fault_schedule"), "rtt_flap");
  EXPECT_EQ(x.text(x.points[15], "aqm"), "dualpi2");
}

TEST(CampaignSpec, DigestCoversFaultScheduleValues) {
  // A changed fault preset or inline literal is a different experiment: the
  // digest must move so stale journals can never replay into the new grid.
  CampaignSpec tweaked = resilience_spec();
  tweaked.axes[1].values[0] = axis_text("rate_step@0.4:rate=0.5");
  const Expansion base = expand(resilience_spec(), ExpandOptions{});
  const Expansion moved = expand(tweaked, ExpandOptions{});
  EXPECT_NE(base.digest, moved.digest);
  // ...and so do the per-point keys of the affected points.
  EXPECT_NE(base.points[0].key, moved.points[0].key);
}

TEST(CampaignSpec, DigestCoversFluidFlowCounts) {
  CampaignSpec tweaked = resilience_spec();
  tweaked.axes[2].values[1] = axis_number(2000);
  EXPECT_NE(expand(resilience_spec(), ExpandOptions{}).digest,
            expand(tweaked, ExpandOptions{}).digest);
}

TEST(CampaignSpec, ExpansionIsRowMajorLastAxisFastest) {
  const Expansion x = expand(sweep_spec(), ExpandOptions{});
  // 2 aqm x 2 mix x 3 rate x 3 rtt, rtt fastest — the fig15 loop nest.
  ASSERT_EQ(x.points.size(), 36u);
  EXPECT_EQ(x.text(x.points[0], "aqm"), "pie");
  EXPECT_EQ(x.number(x.points[0], "rtt_ms"), 5.0);
  EXPECT_EQ(x.number(x.points[1], "rtt_ms"), 20.0);
  EXPECT_EQ(x.number(x.points[2], "rtt_ms"), 100.0);
  EXPECT_EQ(x.number(x.points[3], "rtt_ms"), 5.0);
  EXPECT_EQ(x.number(x.points[3], "rate_mbps"), 40.0);
  // aqm is the outermost axis: flips halfway through the grid.
  EXPECT_EQ(x.text(x.points[17], "aqm"), "pie");
  EXPECT_EQ(x.text(x.points[18], "aqm"), "coupled-pi2");
  for (std::size_t i = 0; i < x.points.size(); ++i) {
    EXPECT_EQ(x.points[i].index, i);
  }
}

TEST(CampaignSpec, PointSeedsDeriveFromBaseSeedAndIndex) {
  const Expansion x = expand(overload_spec(), ExpandOptions{});
  ASSERT_GE(x.points.size(), 2u);
  EXPECT_EQ(x.points[0].seed, sim::Rng::derive_seed(1, 0));
  EXPECT_EQ(x.points[1].seed, sim::Rng::derive_seed(1, 1));
}

TEST(CampaignSpec, FullModeSelectsFullGrids) {
  ExpandOptions full;
  full.full = true;
  const Expansion x = expand(sweep_spec(), full);
  EXPECT_EQ(x.points.size(), 2u * 2u * 5u * 5u);
  const Expansion quick = expand(sweep_spec(), ExpandOptions{});
  EXPECT_NE(x.digest, quick.digest) << "mode is results-determining";
}

TEST(CampaignSpec, GridCapTruncatesOnlyCapEnabledAxes) {
  ExpandOptions smoke;
  smoke.grid_cap = 2;
  const Expansion x = expand(sweep_spec(), smoke);
  // aqm/cc_mix carry cap:false (the fig binaries never cap the enumerations),
  // rate/rtt truncate to their first two values.
  EXPECT_EQ(x.points.size(), 2u * 2u * 2u * 2u);
  ASSERT_EQ(x.axes.size(), 4u);
  EXPECT_EQ(x.axes[2].values.size(), 2u);
  EXPECT_EQ(x.axes[2].values[0].number, 4.0);
  EXPECT_EQ(x.axes[2].values[1].number, 40.0);
}

TEST(CampaignSpec, MinLinkFilterDropsSlowRates) {
  ExpandOptions opts;
  opts.min_link_mbps = 10;
  const Expansion x = expand(sweep_spec(), opts);
  EXPECT_EQ(x.points.size(), 2u * 2u * 2u * 3u);
  const int rate = x.axis_of("rate_mbps");
  ASSERT_GE(rate, 0);
  for (const AxisValue& v : x.axes[static_cast<std::size_t>(rate)].values) {
    EXPECT_GE(v.number, 10.0);
  }
}

TEST(CampaignSpec, SeedOverrideReplacesBaseSeedAndMovesDigest) {
  ExpandOptions opts;
  opts.use_seed = true;
  opts.seed = 7;
  const Expansion x = expand(sweep_spec(), opts);
  EXPECT_EQ(x.base_seed, 7u);
  EXPECT_EQ(x.points[0].seed, sim::Rng::derive_seed(7, 0));
  EXPECT_NE(x.digest, expand(sweep_spec(), ExpandOptions{}).digest);
}

TEST(CampaignSpec, DurationOverridesMoveDigest) {
  ExpandOptions opts;
  opts.duration_s_override = 5;
  opts.stats_start_s_override = 2;
  const Expansion x = expand(overload_spec(), opts);
  EXPECT_EQ(x.duration_s, 5.0);
  EXPECT_EQ(x.stats_start_s, 2.0);
  EXPECT_NE(x.digest, expand(overload_spec(), ExpandOptions{}).digest)
      << "durations are results-determining, the digest must cover them";
}

TEST(CampaignSpec, DigestCoversTheCampaignName) {
  // The digest is the journal key: renaming a campaign must orphan its old
  // journals (the merge's name check fires first and reports foreign, but
  // the digest independently refuses the replay).
  CampaignSpec renamed = sweep_spec();
  renamed.name = "fig15-relabeled";
  EXPECT_NE(expand(renamed, ExpandOptions{}).digest,
            expand(sweep_spec(), ExpandOptions{}).digest);
}

TEST(CampaignSpec, LargeSeedsSurviveTheJsonRoundTrip) {
  // Seeds above 2^53 overflow a double's mantissa; the parser rereads the
  // raw digits so serialize -> parse is exact for the full 64-bit range.
  CampaignSpec spec = overload_spec();
  spec.seed = 0x7fffffffffffffffull - 2;
  CampaignSpec reparsed;
  ASSERT_EQ(parse_spec(serialize_spec(spec), reparsed), "");
  EXPECT_EQ(reparsed.seed, spec.seed);
}

TEST(CampaignSpec, SerializeParseRoundTripsExactly) {
  const CampaignSpec spec = sweep_spec();
  const std::string text = serialize_spec(spec);
  CampaignSpec reparsed;
  ASSERT_EQ(parse_spec(text, reparsed), "");
  EXPECT_EQ(reparsed.name, spec.name);
  EXPECT_EQ(reparsed.template_name, spec.template_name);
  EXPECT_EQ(reparsed.seed, spec.seed);
  ASSERT_EQ(reparsed.axes.size(), spec.axes.size());
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    EXPECT_EQ(reparsed.axes[i].name, spec.axes[i].name);
    EXPECT_EQ(reparsed.axes[i].cap, spec.axes[i].cap);
    EXPECT_TRUE(reparsed.axes[i].values == spec.axes[i].values);
    EXPECT_TRUE(reparsed.axes[i].full_values == spec.axes[i].full_values);
  }
  EXPECT_EQ(serialize_spec(reparsed), text) << "canonical form is a fixpoint";
}

// --- validate() taxonomy: one message per test, asserted verbatim ---------

TEST(CampaignValidate, EmptyName) {
  CampaignSpec spec = sweep_spec();
  spec.name = "";
  EXPECT_EQ(spec.validate(), "name must be a non-empty string");
}

TEST(CampaignValidate, UnknownTemplate) {
  CampaignSpec spec = sweep_spec();
  spec.template_name = "trident";
  EXPECT_EQ(spec.validate(),
            "template 'trident' is not a recognized template "
            "(dumbbell_sweep, overload, parking_lot, rtt_mix, resilience)");
}

TEST(CampaignValidate, NegativeLinkOverride) {
  CampaignSpec spec = overload_spec();
  spec.link_mbps = -4;
  EXPECT_EQ(spec.validate(), "link_mbps must be a finite rate > 0 (got -4)");
}

TEST(CampaignValidate, NegativeRttOverride) {
  CampaignSpec spec = overload_spec();
  spec.rtt_ms = -1;
  EXPECT_EQ(spec.validate(), "rtt_ms must be a finite delay > 0 (got -1)");
}

TEST(CampaignValidate, NoAxes) {
  CampaignSpec spec = sweep_spec();
  spec.axes.clear();
  EXPECT_EQ(spec.validate(), "axes must list at least one axis");
}

TEST(CampaignValidate, EmptyAxisName) {
  CampaignSpec spec = sweep_spec();
  spec.axes[0].name = "";
  EXPECT_EQ(spec.validate(), "axes[0].name must be a non-empty name");
}

TEST(CampaignValidate, UnknownAxisName) {
  CampaignSpec spec = sweep_spec();
  spec.axes[1].name = "zoom";
  EXPECT_EQ(spec.validate(),
            "axes[1].name 'zoom' is not a recognized axis (aqm, cc_mix, ecn, "
            "fault_schedule, fluid_flows, hops, rate_mbps, rtt_ms, udp_mult)");
}

TEST(CampaignValidate, AxisForeignToTemplate) {
  CampaignSpec spec = overload_spec();
  spec.axes[1].name = "hops";
  spec.axes[1].values = {axis_number(2)};
  EXPECT_EQ(spec.validate(),
            "axes[1].name 'hops' is not an axis of template 'overload'");
}

TEST(CampaignValidate, DuplicateAxis) {
  CampaignSpec spec = overload_spec();
  spec.axes[1] = spec.axes[0];
  EXPECT_EQ(spec.validate(), "axes[1].name 'ecn' duplicates axes[0]");
}

TEST(CampaignValidate, EmptyValues) {
  CampaignSpec spec = sweep_spec();
  spec.axes[2].values.clear();
  EXPECT_EQ(spec.validate(), "axes[2].values must list at least one value");
}

TEST(CampaignValidate, StringWhereNumberRequired) {
  CampaignSpec spec = sweep_spec();
  spec.axes[2].values[1] = axis_text("fast");
  EXPECT_EQ(spec.validate(),
            "axes[2].values[1] must be a number for axis 'rate_mbps'");
}

TEST(CampaignValidate, NumberWhereStringRequired) {
  CampaignSpec spec = sweep_spec();
  spec.axes[0].values[0] = axis_number(2);
  EXPECT_EQ(spec.validate(),
            "axes[0].values[0] must be a string for axis 'aqm'");
}

TEST(CampaignValidate, NonPositiveNumericValue) {
  CampaignSpec spec = overload_spec();
  spec.axes[1].values[2] = axis_number(0);
  EXPECT_EQ(spec.validate(),
            "axes[1].values[2] must be a finite value > 0 (got 0)");
}

TEST(CampaignValidate, FractionalHops) {
  CampaignSpec spec;
  spec.name = "parking";
  spec.template_name = "parking_lot";
  Axis aqm;
  aqm.name = "aqm";
  aqm.values = {axis_text("coupled-pi2")};
  Axis hops;
  hops.name = "hops";
  hops.values = {axis_number(2.5)};
  spec.axes = {aqm, hops};
  EXPECT_EQ(spec.validate(),
            "axes[1].values[0] must be a whole number of hops in [1, 8] "
            "(got 2.5)");
}

TEST(CampaignValidate, UnknownAqmForSweepTemplate) {
  // dualpi2 is a fine topology AQM but the 15-18 sweep engine only labels
  // PIE and coupled PI2 records.
  CampaignSpec spec = sweep_spec();
  spec.axes[0].values[1] = axis_text("dualpi2");
  EXPECT_EQ(spec.validate(),
            "axes[0].values[1] 'dualpi2' is not a recognized aqm for "
            "template 'dumbbell_sweep'");
}

TEST(CampaignValidate, UnknownCcMix) {
  CampaignSpec spec = sweep_spec();
  spec.axes[1].values[0] = axis_text("reno/reno");
  EXPECT_EQ(spec.validate(),
            "axes[1].values[0] 'reno/reno' is not a recognized cc_mix "
            "(cubic/ecn-cubic, cubic/dctcp)");
}

TEST(CampaignValidate, UnknownEcnCodepoint) {
  CampaignSpec spec = overload_spec();
  spec.axes[0].values[1] = axis_text("ect9");
  EXPECT_EQ(spec.validate(),
            "axes[0].values[1] 'ect9' is not a recognized ecn codepoint "
            "(not-ect, ect1, ect0)");
}

TEST(CampaignValidate, EmptyFaultScheduleValue) {
  CampaignSpec spec = resilience_spec();
  spec.axes[1].values[2] = axis_text("");
  EXPECT_EQ(spec.validate(),
            "axes[1].values[2] must be a non-empty fault preset name or "
            "literal");
}

TEST(CampaignValidate, FractionalFluidFlows) {
  CampaignSpec spec = resilience_spec();
  spec.axes[2].values[1] = axis_number(10.5);
  EXPECT_EQ(spec.validate(),
            "axes[2].values[1] must be a whole number of fluid flows >= 0 "
            "(got 10.5)");
}

TEST(CampaignValidate, NegativeFluidFlows) {
  CampaignSpec spec = resilience_spec();
  spec.axes[2].values[0] = axis_number(-1);
  EXPECT_EQ(spec.validate(),
            "axes[2].values[0] must be a whole number of fluid flows >= 0 "
            "(got -1)");
}

TEST(CampaignValidate, ZeroFluidFlowsIsLegal) {
  // 0 is the no-background baseline of the resilience grid.
  EXPECT_EQ(resilience_spec().validate(), "");
}

TEST(CampaignValidate, UnknownAqmForResilienceTemplate) {
  // The resilience grid compares the paper's contenders only.
  CampaignSpec spec = resilience_spec();
  spec.axes[0].values[1] = axis_text("red");
  EXPECT_EQ(spec.validate(),
            "axes[0].values[1] 'red' is not a recognized aqm for "
            "template 'resilience'");
}

TEST(CampaignValidate, FullValuesAreCheckedToo) {
  CampaignSpec spec = sweep_spec();
  spec.axes[3].full_values[2] = axis_number(-20);
  EXPECT_EQ(spec.validate(),
            "axes[3].full[2] must be a finite value > 0 (got -20)");
}

TEST(CampaignValidate, MissingRequiredAxis) {
  CampaignSpec spec = sweep_spec();
  spec.axes.pop_back();  // drop rtt_ms
  EXPECT_EQ(spec.validate(), "template 'dumbbell_sweep' requires axis 'rtt_ms'");
}

// --- parse_spec(): strict grammar, parse-level messages -------------------

TEST(CampaignParse, UnknownTopLevelKeyIsRejected) {
  EXPECT_EQ(validate_parsed(
                R"({"name": "x", "template": "rtt_mix", "frobnicate": 1,
                    "axes": [{"name": "aqm", "values": ["pie"]}]})"),
            "spec: unknown key 'frobnicate'");
}

TEST(CampaignParse, UnknownAxisKeyIsRejected) {
  EXPECT_EQ(validate_parsed(
                R"({"name": "x", "template": "rtt_mix",
                    "axes": [{"name": "aqm", "caps": true,
                              "values": ["pie"]}]})"),
            "spec: unknown axis key 'caps'");
}

TEST(CampaignParse, TopLevelMustBeObject) {
  EXPECT_EQ(validate_parsed("[1, 2, 3]"), "spec: top level must be an object");
}

TEST(CampaignParse, SeedMustBeWholeNumber) {
  EXPECT_EQ(validate_parsed(
                R"({"name": "x", "template": "rtt_mix", "seed": -3,
                    "axes": [{"name": "aqm", "values": ["pie"]}]})"),
            "spec: 'seed' must be a non-negative whole number");
}

TEST(CampaignParse, AxisValuesMustBeScalars) {
  EXPECT_EQ(validate_parsed(
                R"({"name": "x", "template": "rtt_mix",
                    "axes": [{"name": "aqm", "values": [["pie"]]}]})"),
            "spec: axis values must be numbers or strings");
}

TEST(CampaignParse, CapMustBeBoolean) {
  EXPECT_EQ(validate_parsed(
                R"({"name": "x", "template": "rtt_mix",
                    "axes": [{"name": "aqm", "cap": 1,
                              "values": ["pie"]}]})"),
            "spec: 'cap' must be true or false");
}

TEST(CampaignParse, MinimalSpecParsesWithDefaults) {
  CampaignSpec spec;
  ASSERT_EQ(parse_spec(R"({"name": "tiny", "template": "rtt_mix",
                           "axes": [{"name": "aqm", "values": ["pie"]}]})",
                       spec),
            "");
  EXPECT_EQ(spec.validate(), "");
  EXPECT_EQ(spec.seed, 1u) << "seed defaults to 1 like the fig binaries";
  EXPECT_TRUE(spec.axes[0].cap) << "cap defaults to true";
  EXPECT_EQ(spec.link_mbps, 0.0) << "0 = template default";
}

// --- shard arithmetic ------------------------------------------------------

TEST(ShardRange, ParsesWellFormedArguments) {
  std::size_t index = 0;
  std::size_t count = 0;
  EXPECT_TRUE(parse_shard("2/3", index, count));
  EXPECT_EQ(index, 2u);
  EXPECT_EQ(count, 3u);
  EXPECT_FALSE(parse_shard("0/3", index, count)) << "shards are 1-based";
  EXPECT_FALSE(parse_shard("4/3", index, count));
  EXPECT_FALSE(parse_shard("2of3", index, count));
  EXPECT_FALSE(parse_shard("/3", index, count));
  EXPECT_FALSE(parse_shard("2/", index, count));
}

TEST(ShardRange, TilesUnevenCountsWithinOnePoint) {
  // 10 points over 3 shards: 3+3+4 (floor formula), no gaps, no overlap.
  const ShardRange a = shard_range(10, 1, 3);
  const ShardRange b = shard_range(10, 2, 3);
  const ShardRange c = shard_range(10, 3, 3);
  EXPECT_EQ(a.lo, 0u);
  EXPECT_EQ(a.hi, b.lo);
  EXPECT_EQ(b.hi, c.lo);
  EXPECT_EQ(c.hi, 10u);
  EXPECT_LE(b.hi - b.lo, (a.hi - a.lo) + 1);
}

TEST(ShardRange, MoreShardsThanPointsLeavesEmptyShards) {
  std::size_t covered = 0;
  for (std::size_t i = 1; i <= 5; ++i) {
    const ShardRange r = shard_range(3, i, 5);
    EXPECT_EQ(r.lo, covered);
    covered = r.hi;
  }
  EXPECT_EQ(covered, 3u) << "empty shards are legal, lost points are not";
}

// --- property sweep over generated and committed specs ---------------------

TEST(CampaignProperties, HoldForGeneratedSpecs) {
  ExpandOptions quick;
  ExpandOptions smoke;
  smoke.grid_cap = 2;
  ExpandOptions full;
  full.full = true;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const CampaignSpec spec = check::random_campaign_spec(seed);
    ASSERT_EQ(spec.validate(), "") << "generator must emit well-formed specs "
                                   << "(seed " << seed << ")";
    EXPECT_EQ(check::check_campaign_properties(spec, quick), "")
        << "seed " << seed << " quick";
    EXPECT_EQ(check::check_campaign_properties(spec, smoke), "")
        << "seed " << seed << " smoke";
    EXPECT_EQ(check::check_campaign_properties(spec, full), "")
        << "seed " << seed << " full";
  }
}

TEST(CampaignProperties, GeneratedDigestsAreDistinct) {
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const Expansion x =
        expand(check::random_campaign_spec(seed), ExpandOptions{});
    EXPECT_TRUE(digests.insert(x.digest).second)
        << "two generated campaigns collide on a digest (seed " << seed << ")";
  }
}

TEST(CampaignProperties, HoldForCommittedCampaignFiles) {
  const char* files[] = {
      "fig15.json",       "fig16.json",        "fig17.json",
      "fig18.json",       "fig_overload.json", "fig_parking_lot.json",
      "fig_rtt_mix.json", "fig_resilience.json",
  };
  ExpandOptions smoke;
  smoke.grid_cap = 2;
  for (const char* file : files) {
    CampaignSpec spec;
    const std::string err =
        load_spec(std::string(PI2_CAMPAIGN_DIR "/") + file, spec);
    ASSERT_EQ(err, "") << file;
    EXPECT_EQ(check::check_campaign_properties(spec, ExpandOptions{}), "")
        << file;
    EXPECT_EQ(check::check_campaign_properties(spec, smoke), "") << file;
  }
}

}  // namespace
}  // namespace pi2::campaign
