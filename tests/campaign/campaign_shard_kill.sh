#!/usr/bin/env bash
# Distributed kill-and-resume: one of three campaign shards is killed
# mid-run (SIGKILL, then SIGTERM), the merge must refuse the torn shard
# until it is resumed — at a *different* --jobs count, so the journal and
# not scheduling luck carries the result — and the final merged journal and
# JSON must be byte-identical to an uninterrupted serial run.
#
# Usage: campaign_shard_kill.sh <pi2_campaign> <spec> <workdir> [hang-index]
# hang-index is the *global* point index the injected hang targets; it must
# lie inside shard 3's slice of the spec's smoke grid (default 3, matching
# a 4-point grid whose 3-way split claims [0,1) [1,2) [2,4)).
set -euo pipefail

bin="$1"
spec="$2"
work="$3"
hang_index="${4:-3}"

rm -rf "$work"
mkdir -p "$work"
cd "$work"

fail() { echo "FAIL: $*" >&2; exit 1; }

run() { "$bin" --smoke --seed 1 --spec "$spec" --telemetry tele "$@"; }

journal_points() {
  local n
  n=$(grep -c '"kind":"point"' "$1" 2>/dev/null) || n=0
  echo "${n:-0}"
}

# Launches shard 3 in the background with one injected 30 s hang inside its
# slice, waits for >=1 journaled point, then delivers $1. The hang keeps the
# victim reliably mid-run; it changes neither the digest nor any completed
# point's bytes.
outcome=""
last_exit=0
kill_shard3() {
  local signal="$1" journal="$2" hang_index="$3"
  rm -f "$journal"
  # The binary itself must be $! (a `run ... &` would background a subshell
  # and the signal would hit bash, not the driver).
  "$bin" --smoke --seed 1 --spec "$spec" --telemetry tele --jobs 2 \
    --shard 3/3 --journal "$journal" \
    --inject-hang "$hang_index" --hang-s 30 >/dev/null 2>&1 &
  local pid=$!
  for _ in $(seq 1 600); do
    [ "$(journal_points "$journal")" -ge 1 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
  done
  if kill "-$signal" "$pid" 2>/dev/null; then
    outcome=killed
  else
    outcome=finished
  fi
  set +e
  wait "$pid"
  last_exit=$?
  set -e
}

# Serial reference plus the two healthy shards; shard 3 is the victim and
# $hang_index must name a global point inside its slice.
run --jobs 2 --json ref.json --journal ref.journal >/dev/null
[ -s ref.json ] || fail "serial reference produced no ref.json"
run --jobs 2 --shard 1/3 --journal s1.journal >/dev/null
run --jobs 2 --shard 2/3 --journal s2.journal >/dev/null

# --- Phase A: SIGKILL shard 3 mid-run ---------------------------------------
kill_shard3 KILL s3.journal "$hang_index"
if [ "$outcome" = killed ]; then
  [ "$(journal_points s3.journal)" -ge 1 ] || fail "no journaled points to resume"
  # The kill left shard 3's declared range incomplete (or its tail torn):
  # the merge must refuse it — 13 shard-gap, or 15 corrupt for a torn tail.
  set +e
  run --jobs 2 --merge s1.journal s2.journal s3.journal --json torn.json \
    >/dev/null 2>&1
  merge_exit=$?
  set -e
  { [ "$merge_exit" -eq 13 ] || [ "$merge_exit" -eq 15 ]; } \
    || fail "merge of the killed shard exited $merge_exit, expected 13 or 15"
  [ ! -e torn.json ] || fail "refused merge left torn.json behind"
else
  echo "WARN: shard finished before SIGKILL; resume degenerates to replay" >&2
fi
# Resume the victim at a different --jobs; the journal is compacted so the
# strict merge loader never sees the torn tail.
run --jobs 1 --shard 3/3 --journal s3.journal --resume >/dev/null
run --jobs 2 --merge s1.journal s2.journal s3.journal \
  --json merged.json --journal merged.journal >/dev/null
cmp ref.json merged.json || fail "merged JSON differs from serial (SIGKILL)"
cmp ref.journal merged.journal \
  || fail "merged journal differs from serial (SIGKILL)"

# --- Phase B: SIGTERM shard 3 (graceful shutdown) ---------------------------
kill_shard3 TERM c3.journal "$hang_index"
if [ "$outcome" = killed ]; then
  [ "$last_exit" -eq 75 ] || fail "SIGTERM exit code $last_exit, expected 75"
  grep -q '"kind":"interrupted"' c3.journal \
    || fail "graceful shutdown did not journal the interrupted marker"
else
  echo "WARN: shard finished before SIGTERM; exit-code check skipped" >&2
fi
run --jobs 1 --shard 3/3 --journal c3.journal --resume >/dev/null
run --jobs 2 --merge s1.journal s2.journal c3.journal \
  --json b.json --journal b.journal >/dev/null
cmp ref.json b.json || fail "merged JSON differs from serial (SIGTERM)"
cmp ref.journal b.journal || fail "merged journal differs from serial (SIGTERM)"

# No half-written artifact may survive anywhere in the work tree.
tmp_files=$(find . -name '*.tmp' | wc -l)
[ "$tmp_files" -eq 0 ] || fail "$tmp_files leftover .tmp artifact(s)"

echo "shard-kill ok"
