// Adversarial shard merge: merge_shards() must refuse every journal set
// that would make the merged artifact differ from a serial run, and each
// refusal must carry its own durable::StatusCode so the failure modes are
// distinguishable from the exit alone. Each test crafts real journals with
// JournalWriter (the production appender), then breaks exactly one
// invariant.
#include "campaign/merge.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "durable/journal.hpp"

namespace pi2::campaign {
namespace {

namespace fs = std::filesystem;

using durable::JournalWriter;
using durable::ShardInfo;
using durable::Status;
using durable::StatusCode;

/// A 6-point campaign (2 aqm x 3 hops) small enough to shard by hand.
Expansion small_campaign() {
  CampaignSpec spec;
  spec.name = "merge-test";
  spec.template_name = "parking_lot";
  spec.seed = 3;
  Axis aqm;
  aqm.name = "aqm";
  aqm.values = {axis_text("coupled-pi2"), axis_text("pie")};
  Axis hops;
  hops.name = "hops";
  hops.values = {axis_number(1), axis_number(2), axis_number(3)};
  spec.axes = {aqm, hops};
  EXPECT_EQ(spec.validate(), "");
  return expand(spec, ExpandOptions{});
}

std::string payload_for(std::size_t index) {
  return "payload-" + std::to_string(index);
}

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "pi2_merge_" + name;
}

ShardInfo shard_info(const Expansion& x, std::uint64_t index,
                     std::uint64_t count, std::uint64_t lo, std::uint64_t hi) {
  ShardInfo info;
  info.present = true;
  info.campaign = x.name;
  info.digest = x.digest;
  info.index = index;
  info.count = count;
  info.lo = lo;
  info.hi = hi;
  return info;
}

/// Writes a well-formed shard journal claiming [lo, hi) with one point
/// record per claimed index.
void write_shard(const std::string& path, const Expansion& x,
                 std::uint64_t index, std::uint64_t count, std::size_t lo,
                 std::size_t hi) {
  fs::remove(path);
  JournalWriter writer{path, x.digest, /*keep_existing=*/false};
  ASSERT_TRUE(writer.healthy());
  ASSERT_TRUE(writer.append_shard(shard_info(x, index, count, lo, hi)).ok());
  for (std::size_t i = lo; i < hi; ++i) {
    ASSERT_TRUE(writer.append_point(x.points[i].key, payload_for(i)).ok());
  }
}

class MergeShards : public ::testing::Test {
 protected:
  void SetUp() override { x_ = small_campaign(); }
  void TearDown() override {
    for (const std::string& path : cleanup_) fs::remove(path);
  }

  std::string shard_path(const std::string& name) {
    const std::string path = temp_path(name);
    cleanup_.push_back(path);
    return path;
  }

  Expansion x_;
  std::vector<std::string> cleanup_;
};

TEST_F(MergeShards, TwoShardsStitchBackInIndexOrder) {
  const std::string a = shard_path("ok_a.journal");
  const std::string b = shard_path("ok_b.journal");
  write_shard(a, x_, 1, 2, 0, 3);
  write_shard(b, x_, 2, 2, 3, 6);
  MergeResult merged;
  // Shard order on the command line must not matter.
  const Status status = merge_shards(x_, {b, a}, merged);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(merged.shards, 2u);
  EXPECT_EQ(merged.interrupted, 0u);
  ASSERT_EQ(merged.payloads.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(merged.payloads[i], payload_for(i));
  }
}

TEST_F(MergeShards, SingleSerialShardMerges) {
  const std::string a = shard_path("serial.journal");
  write_shard(a, x_, 1, 1, 0, 6);
  MergeResult merged;
  EXPECT_TRUE(merge_shards(x_, {a}, merged).ok());
  EXPECT_EQ(merged.shards, 1u);
}

TEST_F(MergeShards, ResumedReappendWithIdenticalBytesIsTolerated) {
  const std::string a = shard_path("reappend.journal");
  write_shard(a, x_, 1, 1, 0, 6);
  {
    // A resumed shard re-journals a point it already holds — same bytes.
    JournalWriter writer{a, x_.digest, /*keep_existing=*/true};
    ASSERT_TRUE(writer.append_point(x_.points[2].key, payload_for(2)).ok());
  }
  MergeResult merged;
  const Status status = merge_shards(x_, {a}, merged);
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(merged.payloads[2], payload_for(2));
}

TEST_F(MergeShards, InterruptedMarkersAreCountedNotFatal) {
  const std::string a = shard_path("interrupted.journal");
  write_shard(a, x_, 1, 1, 0, 6);
  {
    JournalWriter writer{a, x_.digest, /*keep_existing=*/true};
    ASSERT_TRUE(writer.append_interrupted("signal 15").ok());
  }
  MergeResult merged;
  EXPECT_TRUE(merge_shards(x_, {a}, merged).ok());
  EXPECT_EQ(merged.interrupted, 1u);
}

TEST_F(MergeShards, EmptyPathListIsInvalid) {
  MergeResult merged;
  EXPECT_EQ(merge_shards(x_, {}, merged).code(), StatusCode::kInvalid);
}

TEST_F(MergeShards, MissingFileIsIoError) {
  MergeResult merged;
  const Status status =
      merge_shards(x_, {temp_path("never_written.journal")}, merged);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(MergeShards, JournalWithoutShardRecordIsForeign) {
  // A fig binary's plain resume journal: right digest, no shard claim.
  const std::string a = shard_path("no_shard_record.journal");
  {
    JournalWriter writer{a, x_.digest, false};
    ASSERT_TRUE(writer.append_point(x_.points[0].key, payload_for(0)).ok());
  }
  MergeResult merged;
  const Status status = merge_shards(x_, {a}, merged);
  EXPECT_EQ(status.code(), StatusCode::kForeignCampaign);
  EXPECT_NE(status.message().find("no shard record"), std::string::npos);
}

TEST_F(MergeShards, WrongCampaignNameIsForeign) {
  const std::string a = shard_path("foreign_name.journal");
  fs::remove(a);
  {
    JournalWriter writer{a, x_.digest, false};
    ShardInfo info = shard_info(x_, 1, 1, 0, 6);
    info.campaign = "somebody-else";
    ASSERT_TRUE(writer.append_shard(info).ok());
  }
  MergeResult merged;
  const Status status = merge_shards(x_, {a}, merged);
  EXPECT_EQ(status.code(), StatusCode::kForeignCampaign);
  EXPECT_NE(status.message().find("somebody-else"), std::string::npos);
  EXPECT_NE(status.message().find("merge-test"), std::string::npos);
}

TEST_F(MergeShards, SameNameDifferentDigestIsStale) {
  // Same campaign name, but the shard ran under a different spec revision.
  Expansion stale = x_;
  stale.digest = x_.digest + 1;
  const std::string a = shard_path("stale.journal");
  fs::remove(a);
  {
    JournalWriter writer{a, stale.digest, false};
    ASSERT_TRUE(writer.append_shard(shard_info(stale, 1, 1, 0, 6)).ok());
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          writer.append_point(x_.points[i].key, payload_for(i)).ok());
    }
  }
  MergeResult merged;
  const Status status = merge_shards(x_, {a}, merged);
  EXPECT_EQ(status.code(), StatusCode::kStaleDigest);
  EXPECT_NE(status.message().find("changed since the shard ran"),
            std::string::npos);
}

TEST_F(MergeShards, OverlappingClaimsAreRefused) {
  const std::string a = shard_path("overlap_a.journal");
  const std::string b = shard_path("overlap_b.journal");
  write_shard(a, x_, 1, 2, 0, 4);
  write_shard(b, x_, 2, 2, 2, 6);
  MergeResult merged;
  const Status status = merge_shards(x_, {a, b}, merged);
  EXPECT_EQ(status.code(), StatusCode::kShardOverlap);
}

TEST_F(MergeShards, MissingShardLeavesAGap) {
  const std::string a = shard_path("gap_a.journal");
  const std::string c = shard_path("gap_c.journal");
  write_shard(a, x_, 1, 3, 0, 2);
  write_shard(c, x_, 3, 3, 4, 6);
  MergeResult merged;
  const Status status = merge_shards(x_, {a, c}, merged);
  EXPECT_EQ(status.code(), StatusCode::kShardGap);
  EXPECT_NE(status.message().find("2..4"), std::string::npos);
}

TEST_F(MergeShards, TailGapIsDetected) {
  const std::string a = shard_path("tailgap.journal");
  write_shard(a, x_, 1, 1, 0, 4);  // claims to be the whole campaign, isn't
  MergeResult merged;
  EXPECT_EQ(merge_shards(x_, {a}, merged).code(), StatusCode::kShardGap);
}

TEST_F(MergeShards, PointMissingInsideDeclaredRangeIsAGap) {
  // The shard died after journaling 2 of its 3 points: the claim says
  // [0, 3) but only points 0 and 1 are on disk.
  const std::string a = shard_path("halfdead_a.journal");
  const std::string b = shard_path("halfdead_b.journal");
  fs::remove(a);
  {
    JournalWriter writer{a, x_.digest, false};
    ASSERT_TRUE(writer.append_shard(shard_info(x_, 1, 2, 0, 3)).ok());
    ASSERT_TRUE(writer.append_point(x_.points[0].key, payload_for(0)).ok());
    ASSERT_TRUE(writer.append_point(x_.points[1].key, payload_for(1)).ok());
  }
  write_shard(b, x_, 2, 2, 3, 6);
  MergeResult merged;
  const Status status = merge_shards(x_, {a, b}, merged);
  EXPECT_EQ(status.code(), StatusCode::kShardGap);
  EXPECT_NE(status.message().find("resume it with --resume"),
            std::string::npos);
}

TEST_F(MergeShards, DuplicatePointWithDifferentPayloadIsRefused) {
  const std::string a = shard_path("dup.journal");
  fs::remove(a);
  {
    JournalWriter writer{a, x_.digest, false};
    ASSERT_TRUE(writer.append_shard(shard_info(x_, 1, 1, 0, 6)).ok());
    for (std::size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          writer.append_point(x_.points[i].key, payload_for(i)).ok());
    }
    // Nondeterministic re-run: same point, different bytes.
    ASSERT_TRUE(
        writer.append_point(x_.points[4].key, "payload-4-but-different").ok());
  }
  MergeResult merged;
  const Status status = merge_shards(x_, {a}, merged);
  EXPECT_EQ(status.code(), StatusCode::kDuplicatePoint);
  EXPECT_NE(status.message().find("point 4"), std::string::npos);
}

TEST_F(MergeShards, PointOutsideDeclaredRangeIsInvalid) {
  // Both ranges tile the campaign (so no gap/overlap fires), but shard 1's
  // journal holds a point from shard 2's slice.
  const std::string a = shard_path("outside_a.journal");
  const std::string b = shard_path("outside_b.journal");
  fs::remove(a);
  {
    JournalWriter writer{a, x_.digest, false};
    ASSERT_TRUE(writer.append_shard(shard_info(x_, 1, 2, 0, 3)).ok());
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          writer.append_point(x_.points[i].key, payload_for(i)).ok());
    }
    // A point from the *other* shard's slice snuck in.
    ASSERT_TRUE(writer.append_point(x_.points[5].key, payload_for(5)).ok());
  }
  write_shard(b, x_, 2, 2, 3, 6);
  MergeResult merged;
  const Status status = merge_shards(x_, {a, b}, merged);
  EXPECT_EQ(status.code(), StatusCode::kInvalid);
  EXPECT_NE(status.message().find("outside the journal's declared range"),
            std::string::npos);
}

TEST_F(MergeShards, RangeBeyondCampaignIsInvalid) {
  const std::string a = shard_path("too_wide.journal");
  fs::remove(a);
  {
    JournalWriter writer{a, x_.digest, false};
    ASSERT_TRUE(writer.append_shard(shard_info(x_, 1, 1, 0, 9)).ok());
  }
  MergeResult merged;
  const Status status = merge_shards(x_, {a}, merged);
  EXPECT_EQ(status.code(), StatusCode::kInvalid);
  EXPECT_NE(status.message().find("exceeds the campaign's 6 point(s)"),
            std::string::npos);
}

TEST_F(MergeShards, UnknownPointKeyIsCorrupt) {
  const std::string a = shard_path("alien_key.journal");
  fs::remove(a);
  {
    JournalWriter writer{a, x_.digest, false};
    ASSERT_TRUE(writer.append_shard(shard_info(x_, 1, 1, 0, 6)).ok());
    ASSERT_TRUE(writer.append_point(0xdeadbeefdeadbeefull, "alien").ok());
  }
  MergeResult merged;
  EXPECT_EQ(merge_shards(x_, {a}, merged).code(), StatusCode::kCorrupt);
}

TEST_F(MergeShards, TornTailIsCorruptNotSilentlyDropped) {
  // The lenient resume loader re-runs a torn point; the merge must refuse
  // instead — a shard with a torn tail needs a --resume pass first.
  const std::string a = shard_path("torn.journal");
  write_shard(a, x_, 1, 1, 0, 6);
  std::string bytes;
  {
    std::ifstream in(a, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes.resize(bytes.size() - 20);  // SIGKILL mid-append
  { std::ofstream(a, std::ios::binary | std::ios::trunc) << bytes; }
  MergeResult merged;
  const Status status = merge_shards(x_, {a}, merged);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_NE(status.message().find("torn"), std::string::npos);
}

TEST_F(MergeShards, CrcMismatchIsCorrupt) {
  const std::string a = shard_path("bitrot.journal");
  write_shard(a, x_, 1, 1, 0, 6);
  std::string bytes;
  {
    std::ifstream in(a, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const auto pos = bytes.find("payload-2");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 'q';  // flip one payload byte, leave the line intact
  { std::ofstream(a, std::ios::binary | std::ios::trunc) << bytes; }
  MergeResult merged;
  const Status status = merge_shards(x_, {a}, merged);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
}

TEST_F(MergeShards, EveryRefusalHasADistinctCode) {
  // The taxonomy promise: no two failure modes share a StatusCode, so the
  // driver's exit-code map stays injective.
  const StatusCode codes[] = {
      StatusCode::kForeignCampaign, StatusCode::kStaleDigest,
      StatusCode::kShardOverlap,    StatusCode::kShardGap,
      StatusCode::kDuplicatePoint,  StatusCode::kCorrupt,
      StatusCode::kIoError,         StatusCode::kInvalid,
  };
  for (std::size_t i = 0; i < std::size(codes); ++i) {
    for (std::size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(codes[i], codes[j]);
    }
  }
}

}  // namespace
}  // namespace pi2::campaign
