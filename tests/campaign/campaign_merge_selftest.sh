#!/usr/bin/env bash
# Shard-merge failure-taxonomy selftest: run a real campaign serially and as
# 3 shards, prove the merge is byte-identical to the serial run, then
# perturb the good shard set one invariant at a time and assert each
# refusal's distinct exit code (the taxonomy documented in pi2_campaign's
# header):
#
#   drop a shard        -> 13 shard-gap
#   merge a shard twice -> 12 shard-overlap
#   truncate a journal  -> 15 corrupt
#   foreign campaign    -> 10 foreign-campaign
#   reseeded shard      -> 11 stale-digest
#
# A dumbbell-sweep spec rides along for the telemetry happy path: that
# template's JSON embeds per-point manifest paths, so the byte-compare
# proves the merge reconstructs them exactly as a serial --telemetry run
# records them.
#
# Usage: campaign_merge_selftest.sh <pi2_campaign> <spec> <foreign-spec> \
#          <dumbbell-spec> <workdir>
set -euo pipefail

bin="$1"
spec="$2"
foreign_spec="$3"
dumbbell_spec="$4"
work="$5"

rm -rf "$work"
mkdir -p "$work"
cd "$work"

fail() { echo "FAIL: $*" >&2; exit 1; }

run() { "$bin" --smoke --seed 1 --jobs 2 --spec "$spec" "$@"; }

expect_exit() {
  local want="$1"
  shift
  set +e
  "$@" >/dev/null 2>err.txt
  local got=$?
  set -e
  [ "$got" -eq "$want" ] \
    || fail "expected exit $want, got $got ($(tail -n 1 err.txt)): $*"
}

# Serial reference and the 3-way shard split of the same campaign.
run --json ref.json --journal ref.journal >/dev/null
[ -s ref.json ] || fail "serial run produced no ref.json"
for i in 1 2 3; do
  run --shard "$i/3" --journal "s$i.journal" >/dev/null
done

# The happy path: stitched artifacts must be byte-identical to serial.
run --merge s1.journal s2.journal s3.journal \
  --json merged.json --journal merged.journal >/dev/null
cmp ref.json merged.json || fail "merged JSON differs from the serial run"
cmp ref.journal merged.journal \
  || fail "merged journal differs from the serial run"

# A merged journal is itself a valid 1/1 shard: merging it round-trips.
run --merge merged.journal --json again.json --journal again.journal >/dev/null
cmp ref.json again.json || fail "re-merge of the merged journal drifted"

# --- Adversarial perturbations, one invariant each --------------------------

# Missing shard: s1's range is claimed by nobody.
expect_exit 13 run --merge s2.journal s3.journal --json x.json

# Same shard offered twice: its range is claimed twice.
expect_exit 12 run --merge s1.journal s1.journal s2.journal s3.journal \
  --json x.json

# SIGKILL signature: a journal truncated mid-record is corrupt, never
# silently dropped by the merge (resume the shard instead).
size=$(wc -c < s3.journal)
head -c "$((size - 20))" s3.journal > torn.journal
expect_exit 15 run --merge s1.journal s2.journal torn.journal --json x.json

# A journal from a different campaign (another spec's serial run).
"$bin" --smoke --seed 1 --jobs 2 --spec "$foreign_spec" \
  --journal foreign.journal >/dev/null
expect_exit 10 run --merge foreign.journal --json x.json

# Same campaign name, different seed: the digest moved, the shard's grid no
# longer exists.
"$bin" --smoke --seed 2 --jobs 2 --spec "$spec" --shard 1/1 \
  --journal stale.journal >/dev/null
expect_exit 11 run --merge stale.journal --json x.json

# --- Telemetry manifest paths survive the merge -----------------------------
# The dumbbell-sweep template's JSON carries a telemetry_manifest per point;
# the merge must reconstruct those paths from the point index (it has no
# Recorder of its own), byte-identical to the serial run's.
trun() {
  "$bin" --smoke --seed 1 --jobs 2 --spec "$dumbbell_spec" \
    --telemetry tele "$@"
}
trun --json dref.json --journal dref.journal >/dev/null
for i in 1 2 3; do
  trun --shard "$i/3" --journal "d$i.journal" >/dev/null
done
trun --merge d1.journal d2.journal d3.journal \
  --json dmerged.json --journal dmerged.journal >/dev/null
grep -q '"telemetry_manifest"' dref.json \
  || fail "dumbbell serial JSON carries no telemetry_manifest fields"
cmp dref.json dmerged.json \
  || fail "merged telemetry JSON differs from the serial run"
cmp dref.journal dmerged.journal \
  || fail "merged telemetry journal differs from the serial run"

# None of the refusals may have left a half-written artifact behind.
[ ! -e x.json ] || fail "a refused merge left x.json behind"
tmp_files=$(find . -name '*.tmp' | wc -l)
[ "$tmp_files" -eq 0 ] || fail "$tmp_files leftover .tmp artifact(s)"

echo "merge-selftest ok"
