#!/bin/sh
# Regenerates every committed golden baseline from a build directory.
# Run after an intentional behaviour change, then commit the diff:
#
#   tests/golden/regen.sh build
#
# Baselines use the same flags the golden_* ctests use, so a regenerated
# baseline always starts green.
set -eu
build="${1:?usage: regen.sh BUILD_DIR}"
here="$(cd "$(dirname "$0")" && pwd)"
regen() {
  bin="$build/bench/$1"
  out="$here/$2"
  echo "regen: $2 <- $1 --smoke --seed 1 --jobs 2"
  "$bin" --smoke --seed 1 --jobs 2 --json "$out" > /dev/null
}
regen fig15_rate_balance fig15.json
regen fig16_queue_delay fig16.json
regen fig17_mark_prob fig17.json
regen fig18_utilization fig18.json
regen fig_response fig_response.json
echo "done; diff and commit tests/golden/*.json"
