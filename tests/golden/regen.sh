#!/bin/sh
# Regenerates every committed golden baseline from a build directory.
# Run after an intentional behaviour change, then commit the diff:
#
#   tests/golden/regen.sh build
#
# Baselines use the same flags the golden_* ctests use, so a regenerated
# baseline always starts green. Baseline writes are atomic (the figure
# binaries publish --json via tmp + fsync + rename), so an interrupted
# regen leaves the previous baseline intact, never a torn file. The run
# journal each sweep keeps for --resume is pointed at a scratch directory
# so it never lands next to the committed baselines.
set -eu
build="${1:?usage: regen.sh BUILD_DIR}"
here="$(cd "$(dirname "$0")" && pwd)"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
regen() {
  bin="$build/bench/$1"
  out="$here/$2"
  name="$2"
  shift 2
  echo "regen: $name <- with extra args: $*"
  "$bin" --smoke --seed 1 --jobs 2 --json "$out" \
    --journal "$scratch/$name.journal" "$@" > /dev/null
}
regen fig15_rate_balance fig15.json
regen fig16_queue_delay fig16.json
regen fig17_mark_prob fig17.json
regen fig18_utilization fig18.json
regen fig_response fig_response.json
regen fig_overload fig_overload.json
regen fig_parking_lot fig_parking_lot.json
regen fig_rtt_mix fig_rtt_mix.json
# The resilience campaign is driven by pi2_campaign itself (no standalone
# figure binary); the spec pins the fault x fluid grid.
regen pi2_campaign fig_resilience.json \
  --spec "$here/../../campaigns/fig_resilience.json"
# The fluid-agreement baseline is the *packet* rendering of the background
# load; the golden_fluid_fig15..18 ctests run their candidates with
# --fluid-background 2 against it (figs 15-18 share one sweep engine and
# JSON schema, so one baseline covers all four). Flags must match the ctest
# registration in tests/CMakeLists.txt: links >= 40 Mb/s keep the
# equilibrium marking probability inside the mean-field model's small-p
# validity envelope, and the 20 s runs let the fluid transient settle
# before the stats window.
regen fig15_rate_balance fig15_fluid.json --packet-background 2 \
  --min-link-mbps 40 --duration-s 20 --stats-start-s 8
echo "done; diff and commit tests/golden/*.json"
