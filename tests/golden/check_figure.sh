#!/bin/sh
# Golden-figure regression check: run a figure binary on the deterministic
# quick grid (--smoke --seed 1; --jobs only changes wall-clock, never output)
# and compare its --json records against the committed baseline with the
# per-metric tolerance bands of check_golden.
#
# usage: check_figure.sh FIG_BINARY BASELINE CHECK_GOLDEN WORKDIR [extra...]
set -eu
fig="$1"; baseline="$2"; checker="$3"; workdir="$4"; shift 4
mkdir -p "$workdir"
candidate="$workdir/candidate.json"
"$fig" --smoke --seed 1 --jobs 2 --json "$candidate" "$@" > "$workdir/stdout.txt"
exec "$checker" "$baseline" "$candidate"
