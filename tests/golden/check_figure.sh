#!/bin/sh
# Golden-figure regression check: run a figure binary on the deterministic
# quick grid (--smoke --seed 1; --jobs only changes wall-clock, never output)
# and compare its --json records against the committed baseline with the
# per-metric tolerance bands of check_golden.
#
# usage: check_figure.sh FIG_BINARY BASELINE CHECK_GOLDEN WORKDIR [fig-args...] [-- checker-args...]
# Arguments before "--" go to the figure binary, arguments after it to the
# checker (e.g. -- --ignore enqueued,forwarded for cross-tier comparisons).
set -eu
fig="$1"; baseline="$2"; checker="$3"; workdir="$4"; shift 4

fig_args=""
checker_args=""
seen_sep=0
for a in "$@"; do
  if [ "$a" = "--" ]; then
    seen_sep=1
    continue
  fi
  if [ "$seen_sep" = 0 ]; then
    fig_args="$fig_args $a"
  else
    checker_args="$checker_args $a"
  fi
done

mkdir -p "$workdir"
candidate="$workdir/candidate.json"
# shellcheck disable=SC2086  # word-splitting the collected args is intended
"$fig" --smoke --seed 1 --jobs 2 --json "$candidate" $fig_args > "$workdir/stdout.txt"
# shellcheck disable=SC2086
exec "$checker" $checker_args "$baseline" "$candidate"
