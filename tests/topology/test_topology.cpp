// run_topology(): multi-bottleneck behavior — parking-lot fairness shape,
// per-link accounting, fluid scoping, and digest determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/fuzzer.hpp"
#include "check/oracles.hpp"
#include "topology/topology.hpp"

namespace pi2::topology {
namespace {

/// N-hop parking lot: one long flow crossing every hop, one cross flow per
/// hop, equal link rates and RTTs.
TopologyConfig parking_lot(int hops) {
  TopologyConfig cfg;
  for (int i = 0; i <= hops; ++i) {
    cfg.nodes.push_back("n" + std::to_string(i));
  }
  for (int i = 0; i < hops; ++i) {
    LinkSpec link;
    link.from = cfg.nodes[static_cast<std::size_t>(i)];
    link.to = cfg.nodes[static_cast<std::size_t>(i) + 1];
    link.rate_bps = 10e6;
    link.aqm.type = scenario::AqmType::kCoupledPi2;
    link.aqm.ecn = true;
    cfg.links.push_back(link);
  }
  TcpRoute longflow;
  longflow.spec.cc = tcp::CcType::kCubic;
  longflow.spec.count = 1;
  longflow.spec.base_rtt = pi2::sim::from_millis(10);
  longflow.path = cfg.nodes;
  cfg.tcp_flows.push_back(longflow);
  for (int i = 0; i < hops; ++i) {
    TcpRoute cross;
    cross.spec.cc = tcp::CcType::kCubic;
    cross.spec.count = 1;
    cross.spec.base_rtt = pi2::sim::from_millis(10);
    cross.path = {cfg.nodes[static_cast<std::size_t>(i)],
                  cfg.nodes[static_cast<std::size_t>(i) + 1]};
    cfg.tcp_flows.push_back(cross);
  }
  cfg.duration = pi2::sim::from_seconds(10.0);
  cfg.stats_start = pi2::sim::from_seconds(2.0);
  cfg.seed = 1;
  return cfg;
}

TEST(Topology, ParkingLotPenalizesTheLongFlow) {
  const auto cfg = parking_lot(3);
  const TopologyResult result = run_topology(cfg);

  ASSERT_EQ(result.links.size(), 3u);
  ASSERT_EQ(result.flows.size(), 4u);
  ASSERT_EQ(result.flow_route.size(), 4u);

  // The long flow crosses three coupled-PI2 bottlenecks and accumulates
  // three hops of marking, so each cross flow must out-throughput it.
  const double long_mbps = result.route_goodput_mbps(0);
  EXPECT_GT(long_mbps, 0.1);
  for (std::int32_t route = 1; route <= 3; ++route) {
    EXPECT_GT(result.route_goodput_mbps(route), long_mbps)
        << "cross route " << route << " should beat the 3-hop flow";
  }

  // Every link forwarded the long flow plus its own cross flow.
  for (const LinkResult& link : result.links) {
    EXPECT_GT(link.counters.forwarded, 0) << link.name;
    EXPECT_GT(link.qdelay_ms_series.size(), 0u) << link.name;
    EXPECT_GT(link.utilization, 0.5) << link.name;
  }

  // The per-link books must balance exactly.
  std::vector<check::OracleFailure> failures;
  check::check_topology_links(cfg, result, failures);
  for (const auto& failure : failures) {
    ADD_FAILURE() << "[" << failure.oracle << "] " << failure.detail;
  }
}

TEST(Topology, SingleHopMatchesItsOwnSliceInFlattening) {
  auto cfg = parking_lot(1);
  const scenario::RunResult flat = to_run_result(run_topology(cfg));
  ASSERT_EQ(flat.links.size(), 1u);
  EXPECT_EQ(flat.links[0].name, "n0->n1");
  EXPECT_EQ(flat.links[0].counters.forwarded, flat.counters.forwarded);
  EXPECT_EQ(flat.links[0].counters.marked, flat.counters.marked);
  EXPECT_DOUBLE_EQ(flat.links[0].utilization, flat.utilization);
  EXPECT_DOUBLE_EQ(flat.links[0].mean_qdelay_ms, flat.mean_qdelay_ms);
}

TEST(Topology, FluidStaysScopedToItsLink) {
  TopologyConfig cfg;
  cfg.nodes = {"a", "b", "c"};
  LinkSpec ab;
  ab.from = "a";
  ab.to = "b";
  ab.aqm.type = scenario::AqmType::kCoupledPi2;
  ab.aqm.ecn = true;
  LinkSpec bc = ab;
  bc.from = "b";
  bc.to = "c";
  cfg.links = {ab, bc};
  TcpRoute tcp;
  tcp.spec.cc = tcp::CcType::kCubic;
  tcp.spec.count = 1;
  tcp.spec.base_rtt = pi2::sim::from_millis(10);
  tcp.path = {"a", "b", "c"};
  cfg.tcp_flows.push_back(tcp);
  FluidRoute fluid;
  fluid.spec.cc = tcp::CcType::kDctcp;
  fluid.spec.count = 10;
  fluid.spec.base_rtt = pi2::sim::from_millis(10);
  fluid.path = {"b", "c"};  // second hop only
  cfg.fluid_flows.push_back(fluid);
  cfg.duration = pi2::sim::from_seconds(5.0);
  cfg.stats_start = pi2::sim::from_seconds(1.0);

  const TopologyResult result = run_topology(cfg);
  ASSERT_EQ(result.links.size(), 2u);
  EXPECT_EQ(result.links[0].fluid.ticks, 0u);
  EXPECT_EQ(result.links[0].fluid.arrival_bytes, 0.0);
  EXPECT_GT(result.links[1].fluid.ticks, 0u);
  EXPECT_GT(result.links[1].fluid.arrival_bytes, 0.0);

  // One fluid FlowResult, mapped to the fluid route (global route index 1).
  ASSERT_EQ(result.flows.size(), 2u);
  EXPECT_TRUE(result.flows[1].is_fluid);
  EXPECT_EQ(result.flow_route[1], 1);

  std::vector<check::OracleFailure> failures;
  check::check_topology_links(cfg, result, failures);
  for (const auto& failure : failures) {
    ADD_FAILURE() << "[" << failure.oracle << "] " << failure.detail;
  }
}

TEST(Topology, DigestIsDeterministic) {
  const auto cfg = parking_lot(2);
  const std::uint64_t a = check::topology_result_digest(run_topology(cfg));
  const std::uint64_t b = check::topology_result_digest(run_topology(cfg));
  EXPECT_EQ(a, b);

  auto tweaked = cfg;
  tweaked.seed = 2;
  EXPECT_NE(check::topology_result_digest(run_topology(tweaked)), a);
}

TEST(Topology, FuzzedTopologiesPassTheOracles) {
  // A couple of fuzzer-drawn multi-hop cases through the full per-link
  // oracle suite — the same path check_fuzz batches take.
  check::FuzzOptions options;
  options.base_seed = 7;
  const check::ScenarioFuzzer fuzzer{options};
  for (std::uint64_t index : {0ull, 1ull}) {
    const auto cfg = fuzzer.make_topology_config(index);
    const auto outcome = check::run_topology_case_oracles(cfg, index);
    for (const auto& failure : outcome.failures) {
      ADD_FAILURE() << "case " << index << " [" << failure.oracle << "] "
                    << failure.detail;
    }
  }
}

}  // namespace
}  // namespace pi2::topology
