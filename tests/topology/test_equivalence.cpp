// dumbbell_topology_equivalence: run_dumbbell() must be digest-identical to
// a hand-built two-node topology — the dumbbell is the trivial instance of
// the topology engine, not a parallel implementation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "scenario/dumbbell.hpp"
#include "topology/dumbbell_adapter.hpp"
#include "topology/topology.hpp"

namespace pi2::topology {
namespace {

/// Figure 15–18 style mixes: one Classic + one Scalable spec over one
/// AQM-managed bottleneck.
scenario::DumbbellConfig paper_mix(scenario::AqmType aqm, std::uint64_t seed) {
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.aqm.type = aqm;
  cfg.aqm.ecn = true;
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.count = 2;
  cubic.base_rtt = pi2::sim::from_millis(50);
  scenario::TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.count = 2;
  dctcp.base_rtt = pi2::sim::from_millis(50);
  cfg.tcp_flows = {cubic, dctcp};
  cfg.duration = pi2::sim::from_seconds(5.0);
  cfg.stats_start = pi2::sim::from_seconds(1.0);
  cfg.seed = seed;
  return cfg;
}

/// The same scenario written directly against the topology API.
TopologyConfig by_hand(const scenario::DumbbellConfig& dumbbell) {
  TopologyConfig topo;
  topo.nodes = {"snd", "rcv"};
  LinkSpec link;
  link.name = "bottleneck";
  link.from = "snd";
  link.to = "rcv";
  link.rate_bps = dumbbell.link_rate_bps;
  link.buffer_packets = dumbbell.buffer_packets;
  link.aqm = dumbbell.aqm;
  link.rate_changes = dumbbell.rate_changes;
  link.faults = dumbbell.faults;
  topo.links.push_back(link);
  for (const auto& spec : dumbbell.tcp_flows) {
    topo.tcp_flows.push_back({spec, {"snd", "rcv"}});
  }
  for (const auto& spec : dumbbell.udp_flows) {
    topo.udp_flows.push_back({spec, {"snd", "rcv"}});
  }
  for (const auto& spec : dumbbell.fluid_flows) {
    topo.fluid_flows.push_back({spec, {"snd", "rcv"}});
  }
  topo.fluid_dt = dumbbell.fluid_dt;
  topo.ack_quantum = dumbbell.ack_quantum;
  topo.duration = dumbbell.duration;
  topo.stats_start = dumbbell.stats_start;
  topo.seed = dumbbell.seed;
  topo.sample_interval = dumbbell.sample_interval;
  topo.check_invariants = dumbbell.check_invariants;
  return topo;
}

class DumbbellTopologyEquivalence
    : public ::testing::TestWithParam<scenario::AqmType> {};

TEST_P(DumbbellTopologyEquivalence, DigestsMatch) {
  const auto dumbbell = paper_mix(GetParam(), 42);
  const std::uint64_t legacy = check::result_digest(run_dumbbell(dumbbell));
  const std::uint64_t handbuilt =
      check::result_digest(to_run_result(run_topology(by_hand(dumbbell))));
  EXPECT_EQ(legacy, handbuilt)
      << "run_dumbbell diverged from the two-node topology";
}

TEST_P(DumbbellTopologyEquivalence, AdapterMatchesTheHandBuiltConfig) {
  const auto dumbbell = paper_mix(GetParam(), 7);
  const std::uint64_t adapted = check::topology_result_digest(
      run_topology(from_dumbbell(dumbbell)));
  const std::uint64_t handbuilt =
      check::topology_result_digest(run_topology(by_hand(dumbbell)));
  EXPECT_EQ(adapted, handbuilt);
}

INSTANTIATE_TEST_SUITE_P(
    PaperAqms, DumbbellTopologyEquivalence,
    ::testing::Values(scenario::AqmType::kCoupledPi2,
                      scenario::AqmType::kDualPi2, scenario::AqmType::kPie),
    [](const ::testing::TestParamInfo<scenario::AqmType>& info) {
      switch (info.param) {
        case scenario::AqmType::kCoupledPi2:
          return std::string("CoupledPi2");
        case scenario::AqmType::kDualPi2:
          return std::string("DualPi2");
        case scenario::AqmType::kPie:
          return std::string("Pie");
        default:
          return std::string("Other");
      }
    });

TEST(DumbbellTopologyEquivalence, HoldsWithFluidAndUdpLoad) {
  auto dumbbell = paper_mix(scenario::AqmType::kCoupledPi2, 99);
  scenario::UdpFlowSpec udp;
  udp.rate_bps = 2e6;
  udp.base_rtt = pi2::sim::from_millis(50);
  dumbbell.udp_flows.push_back(udp);
  scenario::FluidFlowSpec fluid;
  fluid.cc = tcp::CcType::kDctcp;
  fluid.count = 50.0;
  fluid.base_rtt = pi2::sim::from_millis(50);
  dumbbell.fluid_flows.push_back(fluid);

  const std::uint64_t legacy = check::result_digest(run_dumbbell(dumbbell));
  const std::uint64_t handbuilt =
      check::result_digest(to_run_result(run_topology(by_hand(dumbbell))));
  EXPECT_EQ(legacy, handbuilt);
}

}  // namespace
}  // namespace pi2::topology
