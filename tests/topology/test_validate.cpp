// TopologyConfig::validate(): every rejection names the offending field and
// constraint in the DumbbellConfig::validate() style, so a bench author can
// fix a topology spec from the message alone.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "topology/topology.hpp"

namespace pi2::topology {
namespace {

/// A well-formed 2-link chain with one flow of each kind; each test breaks
/// exactly one field.
TopologyConfig valid_chain() {
  TopologyConfig cfg;
  cfg.nodes = {"a", "b", "c"};
  LinkSpec ab;
  ab.from = "a";
  ab.to = "b";
  ab.aqm.type = scenario::AqmType::kCoupledPi2;
  LinkSpec bc;
  bc.from = "b";
  bc.to = "c";
  bc.aqm.type = scenario::AqmType::kPie;
  cfg.links = {ab, bc};
  TcpRoute tcp;
  tcp.spec.cc = tcp::CcType::kCubic;
  tcp.spec.count = 1;
  tcp.path = {"a", "b", "c"};
  cfg.tcp_flows.push_back(tcp);
  UdpRoute udp;
  udp.spec.rate_bps = 1e6;
  udp.path = {"b", "c"};
  cfg.udp_flows.push_back(udp);
  FluidRoute fluid;
  fluid.spec.count = 10;
  fluid.path = {"a", "b"};
  cfg.fluid_flows.push_back(fluid);
  cfg.duration = pi2::sim::from_seconds(1.0);
  return cfg;
}

TEST(TopologyValidate, AcceptsTheBaseChain) {
  EXPECT_EQ(valid_chain().validate(), "");
}

TEST(TopologyValidate, RejectsEmptyNodes) {
  auto cfg = valid_chain();
  cfg.nodes.clear();
  EXPECT_EQ(cfg.validate(), "nodes must name at least one node (got 0)");
}

TEST(TopologyValidate, RejectsEmptyNodeName) {
  auto cfg = valid_chain();
  cfg.nodes[1] = "";
  EXPECT_EQ(cfg.validate(), "nodes[1] must be a non-empty name");
}

TEST(TopologyValidate, RejectsDuplicateNode) {
  auto cfg = valid_chain();
  cfg.nodes[2] = "a";
  EXPECT_EQ(cfg.validate(), "nodes[2] must be unique (got \"a\")");
}

TEST(TopologyValidate, RejectsEmptyLinks) {
  auto cfg = valid_chain();
  cfg.links.clear();
  EXPECT_EQ(cfg.validate(), "links must contain at least one link (got 0)");
}

TEST(TopologyValidate, RejectsUnknownFromNode) {
  auto cfg = valid_chain();
  cfg.links[0].from = "zz";
  EXPECT_EQ(cfg.validate(),
            "links[0].from must name a configured node (got \"zz\")");
}

TEST(TopologyValidate, RejectsUnknownToNode) {
  auto cfg = valid_chain();
  cfg.links[1].to = "zz";
  EXPECT_EQ(cfg.validate(),
            "links[1].to must name a configured node (got \"zz\")");
}

TEST(TopologyValidate, RejectsSelfLoop) {
  auto cfg = valid_chain();
  cfg.links[0].to = "a";
  EXPECT_EQ(cfg.validate(),
            "links[0].to must differ from .from (got \"a\")");
}

TEST(TopologyValidate, RejectsDuplicateDirectedPair) {
  auto cfg = valid_chain();
  cfg.links[1].from = "a";
  cfg.links[1].to = "b";
  // The tcp/udp routes still resolve a->b->c? No — b->c is gone, so break
  // the routes too would mask the earlier check; the link check fires first.
  EXPECT_EQ(cfg.validate(),
            "links[1].from/to must be a unique directed pair (got \"a->b\")");
}

TEST(TopologyValidate, RejectsDuplicateLinkName) {
  auto cfg = valid_chain();
  cfg.links[0].name = "x";
  cfg.links[1].name = "x";
  EXPECT_EQ(cfg.validate(), "links[1].name must be unique (got \"x\")");
}

TEST(TopologyValidate, RejectsNonFiniteLinkRate) {
  auto cfg = valid_chain();
  cfg.links[0].rate_bps = std::nan("");
  EXPECT_EQ(cfg.validate(),
            "links[0].rate_bps must be finite and > 0 (got nan)");
  cfg.links[0].rate_bps = 0.0;
  EXPECT_EQ(cfg.validate(),
            "links[0].rate_bps must be finite and > 0 (got 0)");
}

TEST(TopologyValidate, RejectsNonPositiveBuffer) {
  auto cfg = valid_chain();
  cfg.links[1].buffer_packets = 0;
  EXPECT_EQ(cfg.validate(), "links[1].buffer_packets must be > 0 (got 0)");
}

TEST(TopologyValidate, RejectsNegativeLinkDelay) {
  auto cfg = valid_chain();
  cfg.links[0].delay = pi2::sim::from_millis(-1.0);
  EXPECT_EQ(cfg.validate(),
            "links[0].delay must be >= 0 seconds (got -0.001)");
}

TEST(TopologyValidate, PrefixesPerLinkAqmErrors) {
  auto cfg = valid_chain();
  cfg.links[1].aqm.target = pi2::sim::Duration{0};
  EXPECT_EQ(cfg.validate(),
            "links[1].aqm.target must be > 0 seconds (got 0)");
}

TEST(TopologyValidate, PrefixesPerLinkRateChangeErrors) {
  auto cfg = valid_chain();
  scenario::RateChange change;
  change.at = pi2::sim::from_seconds(-1.0);
  change.rate_bps = 1e6;
  cfg.links[0].rate_changes.push_back(change);
  EXPECT_EQ(cfg.validate(),
            "links[0].rate_changes[0].at must be >= 0 seconds (got -1)");
}

TEST(TopologyValidate, PrefixesPerLinkFaultErrors) {
  auto cfg = valid_chain();
  cfg.links[1].faults.rate_step(pi2::sim::from_seconds(0.1), -1.0);
  EXPECT_EQ(cfg.validate(),
            "links[1].fault event #0 (rate-step): `rate_bps` must be > 0");
}

TEST(TopologyValidate, RejectsAckQuantumWithPerLinkRttFaults) {
  auto cfg = valid_chain();
  cfg.ack_quantum = pi2::sim::from_millis(1.0);
  EXPECT_EQ(cfg.validate(), "");  // quantum alone is fine
  cfg.links[1].faults.rtt_step(pi2::sim::from_seconds(0.1),
                               pi2::sim::from_millis(20.0));
  EXPECT_EQ(cfg.validate(),
            "ack_quantum must be 0 when a multi-link topology schedules "
            "rtt-step faults (got 0.001)");
}

TEST(TopologyValidate, RejectsShortPath) {
  auto cfg = valid_chain();
  cfg.tcp_flows[0].path = {"a"};
  EXPECT_EQ(cfg.validate(),
            "tcp_flows[0].path must name at least two nodes (got 1)");
}

TEST(TopologyValidate, RejectsUnknownNodeInPath) {
  auto cfg = valid_chain();
  cfg.tcp_flows[0].path = {"a", "zz"};
  EXPECT_EQ(cfg.validate(),
            "tcp_flows[0].path[1] must name a configured node (got \"zz\")");
}

TEST(TopologyValidate, RejectsRevisitedNode) {
  auto cfg = valid_chain();
  cfg.nodes.push_back("d");
  LinkSpec cb;
  cb.from = "c";
  cb.to = "b";
  cfg.links.push_back(cb);
  cfg.tcp_flows[0].path = {"a", "b", "c", "b"};
  EXPECT_EQ(cfg.validate(),
            "tcp_flows[0].path must not revisit a node (got \"b\")");
}

TEST(TopologyValidate, RejectsDisconnectedRoute) {
  auto cfg = valid_chain();
  cfg.udp_flows[0].path = {"a", "c"};
  EXPECT_EQ(cfg.validate(),
            "udp_flows[0].path must follow configured links "
            "(no link \"a->c\")");
}

TEST(TopologyValidate, RejectsMultiLinkFluidRoute) {
  auto cfg = valid_chain();
  cfg.fluid_flows[0].path = {"a", "b", "c"};
  EXPECT_EQ(cfg.validate(),
            "fluid_flows[0].path must cross exactly one link (got 2)");
}

TEST(TopologyValidate, PrefixesFlowSpecErrors) {
  auto cfg = valid_chain();
  cfg.tcp_flows[0].spec.count = -1;
  EXPECT_EQ(cfg.validate(), "tcp_flows[0].spec.count must be >= 0 (got -1)");
  cfg = valid_chain();
  cfg.udp_flows[0].spec.rate_bps = 0.0;
  EXPECT_EQ(cfg.validate(),
            "udp_flows[0].spec.rate_bps must be finite and > 0 (got 0)");
  cfg = valid_chain();
  cfg.fluid_flows[0].spec.count = -2.0;
  EXPECT_EQ(cfg.validate(),
            "fluid_flows[0].spec.count must be finite and >= 0 (got -2)");
}

TEST(TopologyValidate, RejectsBadScalarFields) {
  auto cfg = valid_chain();
  cfg.duration = pi2::sim::kTimeZero;
  EXPECT_EQ(cfg.validate(), "duration must be > 0 seconds (got 0)");
  cfg = valid_chain();
  cfg.stats_start = cfg.duration + pi2::sim::from_seconds(1.0);
  EXPECT_EQ(cfg.validate(), "stats_start must lie within [0, duration] (got 2)");
  cfg = valid_chain();
  cfg.sample_interval = pi2::sim::Duration{0};
  EXPECT_EQ(cfg.validate(), "sample_interval must be > 0 seconds (got 0)");
  cfg = valid_chain();
  cfg.fluid_dt = pi2::sim::Duration{0};
  EXPECT_EQ(cfg.validate(), "fluid_dt must be > 0 seconds (got 0)");
  cfg = valid_chain();
  cfg.ack_quantum = pi2::sim::from_millis(-1.0);
  EXPECT_EQ(cfg.validate(), "ack_quantum must be >= 0 seconds (got -0.001)");
}

TEST(TopologyValidate, RunTopologyThrowsTheMessage) {
  auto cfg = valid_chain();
  cfg.links[0].rate_bps = -1.0;
  try {
    (void)run_topology(cfg);
    FAIL() << "run_topology accepted an invalid config";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("links[0].rate_bps"),
              std::string::npos);
  }
}

TEST(TopologyValidate, LinkBetweenResolvesDirectedPairs) {
  const auto cfg = valid_chain();
  EXPECT_EQ(cfg.link_between("a", "b"), 0);
  EXPECT_EQ(cfg.link_between("b", "c"), 1);
  EXPECT_EQ(cfg.link_between("b", "a"), -1);
  EXPECT_EQ(cfg.link_between("a", "c"), -1);
}

}  // namespace
}  // namespace pi2::topology
