// End-to-end coexistence properties (the paper's second contribution):
// Cubic and DCTCP sharing one coupled-PI2 queue get roughly equal rates,
// while PIE lets DCTCP starve Cubic.
#include <gtest/gtest.h>

#include <cmath>

#include "scenario/dumbbell.hpp"

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;
using std::chrono::seconds;

RunResult run_mix(AqmType aqm, int cubic_flows, int dctcp_flows, double link_mbps,
                  double rtt_ms, double coupling_k = 2.0) {
  DumbbellConfig cfg;
  cfg.link_rate_bps = link_mbps * 1e6;
  cfg.duration = Time{seconds{80}};
  cfg.stats_start = Time{seconds{30}};
  cfg.aqm.type = aqm;
  cfg.aqm.coupling_k = coupling_k;
  // The paper's PIE runs rework the mark->drop switchover to avoid the 10%
  // discontinuity; always-mark is that rework.
  cfg.aqm.ecn_drop_threshold = 1.0;
  if (cubic_flows > 0) {
    TcpFlowSpec cubic;
    cubic.cc = tcp::CcType::kCubic;
    cubic.count = cubic_flows;
    cubic.base_rtt = from_millis(rtt_ms);
    cfg.tcp_flows.push_back(cubic);
  }
  if (dctcp_flows > 0) {
    TcpFlowSpec dctcp;
    dctcp.cc = tcp::CcType::kDctcp;
    dctcp.count = dctcp_flows;
    dctcp.base_rtt = from_millis(rtt_ms);
    cfg.tcp_flows.push_back(dctcp);
  }
  RunResult result = run_dumbbell(cfg);
  // No component may schedule into the past; a clamp means broken timing.
  EXPECT_EQ(result.clamped_events, 0u);
  return result;
}

struct MixCase {
  double link_mbps;
  double rtt_ms;
};

class CoupledFairness : public ::testing::TestWithParam<MixCase> {};

TEST_P(CoupledFairness, CubicAndDctcpWithinFactorTwo) {
  const auto c = GetParam();
  const auto r = run_mix(AqmType::kCoupledPi2, 1, 1, c.link_mbps, c.rtt_ms);
  const double cubic = r.mean_goodput_mbps(tcp::CcType::kCubic);
  const double dctcp = r.mean_goodput_mbps(tcp::CcType::kDctcp);
  ASSERT_GT(cubic, 0.0);
  ASSERT_GT(dctcp, 0.0);
  const double ratio = cubic / dctcp;
  // Figure 15: PI2 keeps the balance close to 1 over the whole range; we
  // allow a factor of 2 per point.
  EXPECT_GT(ratio, 0.5) << "link=" << c.link_mbps << " rtt=" << c.rtt_ms;
  EXPECT_LT(ratio, 2.0) << "link=" << c.link_mbps << " rtt=" << c.rtt_ms;
}

INSTANTIATE_TEST_SUITE_P(Grid, CoupledFairness,
                         ::testing::Values(MixCase{12, 10}, MixCase{40, 10},
                                           MixCase{40, 20}, MixCase{120, 10}));

TEST(Coexistence, PieLetsDctcpStarveCubic) {
  const auto r = run_mix(AqmType::kPie, 1, 1, 40, 10);
  const double cubic = r.mean_goodput_mbps(tcp::CcType::kCubic);
  const double dctcp = r.mean_goodput_mbps(tcp::CcType::kDctcp);
  ASSERT_GT(cubic, 0.0);
  // Figure 15: DCTCP behaves ~10x more aggressively under PIE.
  EXPECT_GT(dctcp / cubic, 4.0);
}

TEST(Coexistence, CoupledQueueStaysNearTarget) {
  const auto r = run_mix(AqmType::kCoupledPi2, 1, 1, 40, 10);
  EXPECT_GT(r.mean_qdelay_ms, 5.0);
  EXPECT_LT(r.mean_qdelay_ms, 35.0);
  EXPECT_LT(r.p99_qdelay_ms, 80.0);
}

TEST(Coexistence, UtilizationStaysHighInBothAqms) {
  for (auto aqm : {AqmType::kCoupledPi2, AqmType::kPie}) {
    const auto r = run_mix(aqm, 1, 1, 40, 10);
    EXPECT_GT(r.utilization, 0.85) << to_string(aqm);
  }
}

TEST(Coexistence, EcnCubicVsCubicIsFairUnderBoth) {
  // The control experiment of Figure 15: same congestion control with and
  // without ECN must split the link evenly under both AQMs.
  for (auto aqm : {AqmType::kCoupledPi2, AqmType::kPie}) {
    DumbbellConfig cfg;
    cfg.link_rate_bps = 40e6;
    cfg.duration = Time{seconds{80}};
    cfg.stats_start = Time{seconds{30}};
    cfg.aqm.type = aqm;
    cfg.aqm.ecn_drop_threshold = 1.0;
    TcpFlowSpec cubic;
    cubic.cc = tcp::CcType::kCubic;
    cubic.base_rtt = from_millis(10);
    TcpFlowSpec ecn_cubic;
    ecn_cubic.cc = tcp::CcType::kEcnCubic;
    ecn_cubic.base_rtt = from_millis(10);
    cfg.tcp_flows = {cubic, ecn_cubic};
    const auto r = run_dumbbell(cfg);
    const double plain = r.mean_goodput_mbps(tcp::CcType::kCubic);
    const double ecn = r.mean_goodput_mbps(tcp::CcType::kEcnCubic);
    ASSERT_GT(plain, 0.0);
    ASSERT_GT(ecn, 0.0);
    EXPECT_GT(plain / ecn, 0.4) << to_string(aqm);
    EXPECT_LT(plain / ecn, 2.5) << to_string(aqm);
  }
}

class FlowCountFairness : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FlowCountFairness, BalanceHoldsAcrossFlowCounts) {
  // Figure 19: the per-flow rate balance is insensitive to the number of
  // concurrent flows of each type.
  const auto [n_cubic, n_dctcp] = GetParam();
  const auto r = run_mix(AqmType::kCoupledPi2, n_cubic, n_dctcp, 40, 10);
  const double cubic = r.mean_goodput_mbps(tcp::CcType::kCubic);
  const double dctcp = r.mean_goodput_mbps(tcp::CcType::kDctcp);
  ASSERT_GT(cubic, 0.0);
  ASSERT_GT(dctcp, 0.0);
  EXPECT_GT(cubic / dctcp, 0.4);
  EXPECT_LT(cubic / dctcp, 2.5);
}

INSTANTIATE_TEST_SUITE_P(Combos, FlowCountFairness,
                         ::testing::Values(std::pair{1, 9}, std::pair{5, 5},
                                           std::pair{9, 1}, std::pair{2, 8}));

TEST(Coexistence, KEqualsTwoBeatsKEqualsOneForFairness) {
  // Ablation: with k = 1 the Classic probability is too high relative to
  // the Scalable one ((p_s)^2 instead of (p_s/2)^2), so Cubic gets less.
  const auto k2 = run_mix(AqmType::kCoupledPi2, 1, 1, 40, 10, 2.0);
  const auto k1 = run_mix(AqmType::kCoupledPi2, 1, 1, 40, 10, 1.0);
  const double ratio_k2 = k2.mean_goodput_mbps(tcp::CcType::kCubic) /
                          k2.mean_goodput_mbps(tcp::CcType::kDctcp);
  const double ratio_k1 = k1.mean_goodput_mbps(tcp::CcType::kCubic) /
                          k1.mean_goodput_mbps(tcp::CcType::kDctcp);
  EXPECT_LT(std::abs(std::log(ratio_k2)), std::abs(std::log(ratio_k1)));
  EXPECT_LT(ratio_k1, ratio_k2);  // k=1 under-serves Cubic
}

TEST(Coexistence, ScalableProbabilityIsTwiceSqrtClassic) {
  // Section 4: p_s = k * sqrt(p_c) with k = 2 in steady state.
  const auto r = run_mix(AqmType::kCoupledPi2, 1, 1, 40, 10);
  const double ps = r.scalable_prob_samples.mean();
  const double pc = r.classic_prob_samples.mean();
  ASSERT_GT(ps, 0.0);
  EXPECT_NEAR(ps / (2.0 * std::sqrt(pc)), 1.0, 0.3);
}

}  // namespace
}  // namespace pi2::scenario
