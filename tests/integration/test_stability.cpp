// End-to-end responsiveness/stability properties (Figures 6, 11-13):
// PI2's higher constant gains must give less overshoot and faster settling
// than PIE, and fixed-gain plain PI must misbehave at light load exactly as
// Figure 6 shows.
#include <gtest/gtest.h>

#include "scenario/dumbbell.hpp"

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;
using std::chrono::seconds;

DumbbellConfig load_step_config(AqmType aqm) {
  // 10 flows, then 40 more join at t = 30 s (a Figure-13-style step).
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{10}};
  cfg.aqm.type = aqm;
  cfg.aqm.ecn = false;
  TcpFlowSpec base;
  base.cc = tcp::CcType::kReno;
  base.count = 10;
  base.base_rtt = from_millis(100);
  TcpFlowSpec burst = base;
  burst.count = 40;
  burst.start = Time{seconds{30}};
  cfg.tcp_flows = {base, burst};
  return cfg;
}

TEST(Stability, Pi2RecoversFromLoadStepNoWorseThanPie) {
  const auto pie = run_dumbbell(load_step_config(AqmType::kPie));
  const auto pi2r = run_dumbbell(load_step_config(AqmType::kPi2));
  // Peak queue delay in the 10 s after the load step.
  const double peak_pie =
      pie.qdelay_ms_series.max_over(Time{seconds{30}}, Time{seconds{40}});
  const double peak_pi2 =
      pi2r.qdelay_ms_series.max_over(Time{seconds{30}}, Time{seconds{40}});
  EXPECT_LE(peak_pi2, peak_pie * 1.5);
  // Both must re-converge: mean delay in the last 10 s near target.
  EXPECT_LT(pi2r.qdelay_ms_series.mean_over(Time{seconds{50}}, Time{seconds{60}}),
            60.0);
}

TEST(Stability, Pi2StartupOvershootBelowPie) {
  // Figure 11: less queue overshoot on start-up for PI2.
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{20}};
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kReno;
  flow.count = 5;
  flow.base_rtt = from_millis(100);
  cfg.tcp_flows = {flow};
  cfg.aqm.ecn = false;

  cfg.aqm.type = AqmType::kPie;
  const auto pie = run_dumbbell(cfg);
  cfg.aqm.type = AqmType::kPi2;
  const auto pi2r = run_dumbbell(cfg);
  const double peak_pie = pie.qdelay_ms_series.max_over(Time{0}, Time{seconds{20}});
  const double peak_pi2 = pi2r.qdelay_ms_series.max_over(Time{0}, Time{seconds{20}});
  EXPECT_LT(peak_pi2, peak_pie);
}

TEST(Stability, FixedGainPlainPiOscillatesAtLightLoad) {
  // Figure 6's 'pi' mechanism: plain PI with fixed gains (no square, no
  // autotune) over-suppresses light Reno traffic; the square restores both
  // utilization and delay control. In this burst-free simulator the effect
  // appears at a lower drop probability than the paper's testbed point
  // (see fig06's companion experiment and EXPERIMENTS.md): 3 flows at
  // 100 Mb/s, RTT 100 ms put the loop where fig04's margins are negative.
  DumbbellConfig cfg;
  cfg.link_rate_bps = 100e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{20}};
  cfg.aqm.ecn = false;
  cfg.aqm.alpha_hz = 0.125;
  cfg.aqm.beta_hz = 1.25;
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kReno;
  flow.count = 3;
  flow.base_rtt = from_millis(100);
  flow.max_cwnd = 2000;
  cfg.tcp_flows = {flow};

  cfg.aqm.type = AqmType::kPi;
  const auto pi = run_dumbbell(cfg);
  cfg.aqm.type = AqmType::kPi2;
  cfg.aqm.alpha_hz = 0.3125;  // PI2 runs its own (2.5x) constant gains
  cfg.aqm.beta_hz = 3.125;
  const auto pi2r = run_dumbbell(cfg);

  // Plain PI's direct probability is far too aggressive at these loads:
  // it loses throughput relative to PI2.
  EXPECT_LT(pi.utilization, pi2r.utilization - 0.05);
  EXPECT_GT(pi2r.utilization, 0.85);
}

TEST(Stability, Pi2HoldsTargetUnderHeavyLoad) {
  // Figure 11b: 50 flows at 10 Mb/s — a tiny per-flow window; the AQM must
  // still keep the mean near target without collapsing utilization.
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{20}};
  cfg.aqm.type = AqmType::kPi2;
  cfg.aqm.ecn = false;
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kReno;
  flow.count = 50;
  flow.base_rtt = from_millis(100);
  cfg.tcp_flows = {flow};
  const auto r = run_dumbbell(cfg);
  EXPECT_GT(r.utilization, 0.9);
  EXPECT_LT(r.mean_qdelay_ms, 80.0);
}

TEST(Stability, UnresponsiveUdpDoesNotBreakControl) {
  // Figure 11c: 5 TCP + 2 UDP at 6 Mb/s each (12 Mb/s > the 10 Mb/s link
  // would starve TCP; the paper uses this mix at 10 Mb/s where UDP load is
  // 12 Mb/s — the AQM sheds the excess via drops).
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{40}};
  cfg.stats_start = Time{seconds{15}};
  cfg.aqm.type = AqmType::kPi2;
  cfg.aqm.ecn = false;
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kReno;
  flow.count = 5;
  flow.base_rtt = from_millis(100);
  cfg.tcp_flows = {flow};
  UdpFlowSpec udp;
  udp.rate_bps = 3e6;
  udp.count = 2;
  udp.base_rtt = from_millis(100);
  cfg.udp_flows = {udp};
  const auto r = run_dumbbell(cfg);
  // Queue still bounded; probability rose to shed the load.
  EXPECT_LT(r.p99_qdelay_ms, 150.0);
  EXPECT_GT(r.classic_prob_samples.mean(), 0.0);
  EXPECT_GT(r.utilization, 0.9);
}

TEST(Stability, TargetDelayIsRespectedAcrossSettings) {
  // Figure 14: a 5 ms target yields a visibly lower delay distribution than
  // a 20 ms target.
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{50}};
  cfg.stats_start = Time{seconds{15}};
  cfg.aqm.type = AqmType::kPi2;
  cfg.aqm.ecn = false;
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kReno;
  flow.count = 20;
  flow.base_rtt = from_millis(100);
  cfg.tcp_flows = {flow};

  cfg.aqm.target = from_millis(5);
  const auto t5 = run_dumbbell(cfg);
  cfg.aqm.target = from_millis(20);
  const auto t20 = run_dumbbell(cfg);
  EXPECT_LT(t5.qdelay_ms_packets.median(), t20.qdelay_ms_packets.median());
  EXPECT_NEAR(t20.mean_qdelay_ms, 20.0, 12.0);
}

TEST(Stability, BarePieMatchesFullPie) {
  // Section 5: "We saw no difference in any experiment between bare-PIE and
  // the full PIE."
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{20}};
  cfg.aqm.ecn = false;
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kReno;
  flow.count = 5;
  flow.base_rtt = from_millis(100);
  cfg.tcp_flows = {flow};

  cfg.aqm.type = AqmType::kPie;
  const auto full = run_dumbbell(cfg);
  cfg.aqm.type = AqmType::kBarePie;
  const auto bare = run_dumbbell(cfg);
  EXPECT_NEAR(full.mean_qdelay_ms, bare.mean_qdelay_ms, 10.0);
  EXPECT_NEAR(full.utilization, bare.utilization, 0.05);
}

}  // namespace
}  // namespace pi2::scenario
