// Property tests closing the loop between the packet simulator and the
// paper's steady-state equations (Appendix A): run real flows through a real
// AQM and check that the measured windows/probabilities obey the laws the
// analysis assumes.
#include <gtest/gtest.h>

#include <cmath>

#include "control/window_laws.hpp"
#include "scenario/dumbbell.hpp"

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;
using std::chrono::seconds;

struct SteadyCase {
  double link_mbps;
  double rtt_ms;
  int flows;
};

std::ostream& operator<<(std::ostream& os, const SteadyCase& c) {
  return os << c.link_mbps << "Mbps_" << c.rtt_ms << "ms_" << c.flows << "flows";
}

RunResult run_steady(tcp::CcType cc, AqmType aqm, const SteadyCase& c,
                     bool ecn = false) {
  DumbbellConfig cfg;
  cfg.link_rate_bps = c.link_mbps * 1e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{20}};
  cfg.aqm.type = aqm;
  cfg.aqm.ecn = ecn;
  TcpFlowSpec flow;
  flow.cc = cc;
  flow.count = c.flows;
  flow.base_rtt = from_millis(c.rtt_ms);
  cfg.tcp_flows = {flow};
  RunResult result = run_dumbbell(cfg);
  // No component may schedule into the past; a clamp means broken timing.
  EXPECT_EQ(result.clamped_events, 0u);
  return result;
}

/// Mean window per flow (in segments) implied by the measured goodput.
double measured_window(const RunResult& r, tcp::CcType cc, double rtt_ms,
                       double qdelay_ms) {
  const double per_flow_mbps = r.mean_goodput_mbps(cc);
  const double rtt_s = (rtt_ms + qdelay_ms) * 1e-3;
  return per_flow_mbps * 1e6 / 8.0 * rtt_s / net::kDefaultMss;
}

// --- Reno over PI2: W = 1.22 / sqrt(p) --------------------------------------

class RenoSteadyState : public ::testing::TestWithParam<SteadyCase> {};

TEST_P(RenoSteadyState, MatchesEquation5WithinTolerance) {
  const SteadyCase c = GetParam();
  const auto r = run_steady(tcp::CcType::kReno, AqmType::kPi2, c);
  const double p = r.observed_signal_rate();
  ASSERT_GT(p, 1e-5);
  const double w_measured = measured_window(r, tcp::CcType::kReno, c.rtt_ms,
                                            r.mean_qdelay_ms);
  const double w_law = control::reno_window(p);
  // Packet-level effects (timeouts, slow start transients) put the
  // simulated window within ~35% of the idealized law.
  EXPECT_NEAR(w_measured / w_law, 1.0, 0.35) << "p=" << p << " W=" << w_measured;
}

INSTANTIATE_TEST_SUITE_P(Grid, RenoSteadyState,
                         ::testing::Values(SteadyCase{10, 50, 2},
                                           SteadyCase{10, 100, 5},
                                           SteadyCase{40, 20, 4},
                                           SteadyCase{20, 50, 10}));

// --- DCTCP over linear PI: W = 2 / p' ---------------------------------------

class DctcpSteadyState : public ::testing::TestWithParam<SteadyCase> {};

TEST_P(DctcpSteadyState, MatchesEquation11WithinTolerance) {
  const SteadyCase c = GetParam();
  const auto r = run_steady(tcp::CcType::kDctcp, AqmType::kPi, c, /*ecn=*/true);
  const double p = r.observed_signal_rate();
  ASSERT_GT(p, 1e-4);
  const double w_measured = measured_window(r, tcp::CcType::kDctcp, c.rtt_ms,
                                            r.mean_qdelay_ms);
  const double w_law = control::dctcp_window_probabilistic(p);
  EXPECT_NEAR(w_measured / w_law, 1.0, 0.35) << "p=" << p << " W=" << w_measured;
}

INSTANTIATE_TEST_SUITE_P(Grid, DctcpSteadyState,
                         ::testing::Values(SteadyCase{10, 20, 2},
                                           SteadyCase{40, 10, 2},
                                           SteadyCase{40, 20, 5}));

// --- The square really is the compensation ---------------------------------

TEST(SquareCompensation, RenoSignalRateEqualsSquaredInternalProbability) {
  // With Reno over PI2, the observed drop frequency must track E[(p')^2].
  // For Pi2Aqm the sampled classic probability *is* (p')^2, so its mean is
  // exactly the expected signal rate (p' fluctuates, so comparing against
  // (E p')^2 would be biased by the variance).
  SteadyCase c{10, 100, 5};
  const auto r = run_steady(tcp::CcType::kReno, AqmType::kPi2, c);
  const double expected = r.classic_prob_samples.mean();  // E[(p')^2]
  const double observed = r.observed_signal_rate();
  ASSERT_GT(expected, 0.0);
  EXPECT_NEAR(observed / expected, 1.0, 0.3);
  // And the squared signal is always below the linear pseudo-probability.
  EXPECT_LT(observed, r.scalable_prob_samples.mean());
}

TEST(SquareCompensation, CubicFallsBackToCRenoAtTheseScales) {
  // At 10-40 Mb/s and small windows, equation (8) says Cubic operates in its
  // Reno mode; its measured window must match the CReno law better than the
  // pure-cubic law.
  SteadyCase c{10, 50, 2};
  const auto r = run_steady(tcp::CcType::kCubic, AqmType::kPi2, c);
  const double p = r.observed_signal_rate();
  ASSERT_GT(p, 1e-5);
  const double w = measured_window(r, tcp::CcType::kCubic, c.rtt_ms,
                                   r.mean_qdelay_ms);
  EXPECT_TRUE(control::cubic_in_creno_region(w, (c.rtt_ms + r.mean_qdelay_ms) * 1e-3));
  const double err_creno = std::abs(std::log(w / control::creno_window(p)));
  EXPECT_LT(err_creno, 0.45) << "W=" << w << " p=" << p;
}

}  // namespace
}  // namespace pi2::scenario
