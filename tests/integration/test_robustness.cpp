// Robustness properties: the headline results must not depend on the RNG
// seed, on every flow sharing one RTT, or on the exact start order.
#include <gtest/gtest.h>

#include "scenario/dumbbell.hpp"

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;
using std::chrono::seconds;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CoupledFairnessHoldsForEverySeed) {
  DumbbellConfig cfg;
  cfg.link_rate_bps = 40e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{20}};
  cfg.seed = GetParam();
  cfg.aqm.type = AqmType::kCoupledPi2;
  TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = from_millis(10);
  TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.base_rtt = from_millis(10);
  cfg.tcp_flows = {cubic, dctcp};
  const auto r = run_dumbbell(cfg);
  const double ratio = r.mean_goodput_mbps(tcp::CcType::kCubic) /
                       r.mean_goodput_mbps(tcp::CcType::kDctcp);
  EXPECT_GT(ratio, 0.45) << "seed=" << GetParam();
  EXPECT_LT(ratio, 2.2) << "seed=" << GetParam();
  EXPECT_NEAR(r.mean_qdelay_ms, 20.0, 10.0) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u));

TEST(Robustness, MixedRttFlowsShareUnderPi2) {
  // Flows with different base RTTs through one PI2 queue: the usual TCP
  // RTT bias remains (shorter RTT wins), but every flow stays alive and
  // the queue holds its target — the AQM must not amplify the bias.
  DumbbellConfig cfg;
  cfg.link_rate_bps = 20e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{20}};
  cfg.aqm.type = AqmType::kPi2;
  cfg.aqm.ecn = false;
  TcpFlowSpec fast;
  fast.cc = tcp::CcType::kReno;
  fast.count = 2;
  fast.base_rtt = from_millis(20);
  TcpFlowSpec slow = fast;
  slow.base_rtt = from_millis(120);
  cfg.tcp_flows = {fast, slow};
  const auto r = run_dumbbell(cfg);
  ASSERT_EQ(r.flows.size(), 4u);
  for (const auto& f : r.flows) EXPECT_GT(f.goodput_mbps, 0.3);
  EXPECT_GT(r.flows[0].goodput_mbps, r.flows[2].goodput_mbps);  // RTT bias
  EXPECT_NEAR(r.mean_qdelay_ms, 20.0, 10.0);
  EXPECT_GT(r.utilization, 0.9);
}

TEST(Robustness, StaggeredVersusSimultaneousStartsConverge) {
  auto run = [](pi2::sim::Duration stagger) {
    DumbbellConfig cfg;
    cfg.link_rate_bps = 10e6;
    cfg.duration = Time{seconds{60}};
    cfg.stats_start = Time{seconds{30}};
    cfg.aqm.type = AqmType::kPi2;
    cfg.aqm.ecn = false;
    TcpFlowSpec flow;
    flow.cc = tcp::CcType::kReno;
    flow.count = 5;
    flow.base_rtt = from_millis(50);
    flow.stagger = stagger;
    cfg.tcp_flows = {flow};
    return run_dumbbell(cfg);
  };
  const auto together = run(pi2::sim::Duration{0});
  const auto staggered = run(from_millis(200));
  // Long-run aggregates are insensitive to the start pattern.
  EXPECT_NEAR(together.utilization, staggered.utilization, 0.05);
  EXPECT_NEAR(together.mean_qdelay_ms, staggered.mean_qdelay_ms, 8.0);
}

TEST(Robustness, EmptyWorkloadIsWellDefined) {
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{5}};
  const auto r = run_dumbbell(cfg);  // no flows at all
  EXPECT_DOUBLE_EQ(r.utilization, 0.0);
  EXPECT_EQ(r.counters.forwarded, 0);
  EXPECT_DOUBLE_EQ(r.mean_qdelay_ms, 0.0);
}

TEST(Robustness, Pi2RecoversFromImpairedLink) {
  // The fault-injection integration pass: a capacity drop, random loss and
  // ECN bleaching mid-run must neither break the scheduler (no clamped
  // events) nor any runtime invariant, and PI2 must pull the queue back to
  // its target after the capacity returns.
  DumbbellConfig cfg;
  cfg.link_rate_bps = 40e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{40}};  // after the last impairment clears
  cfg.aqm.type = AqmType::kCoupledPi2;
  TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.base_rtt = from_millis(10);
  TcpFlowSpec dctcp;
  dctcp.cc = tcp::CcType::kDctcp;
  dctcp.base_rtt = from_millis(10);
  cfg.tcp_flows = {cubic, dctcp};
  cfg.faults.rate_step(Time{seconds{10}}, 10e6)
      .rate_step(Time{seconds{25}}, 40e6)
      .random_loss(Time{seconds{15}}, Time{seconds{20}}, 0.01)
      .ecn_bleach(Time{seconds{15}}, Time{seconds{20}}, 0.5);
  const auto r = run_dumbbell(cfg);
  EXPECT_EQ(r.clamped_events, 0u);
  EXPECT_TRUE(r.violations.empty()) << r.violations.size() << " violations";
  EXPECT_EQ(r.guard_events, 0u);
  EXPECT_GT(r.fault_counters.dropped, 0);
  EXPECT_GT(r.fault_counters.bleached, 0);
  EXPECT_EQ(r.fault_counters.rate_changes, 2);
  // Post-recovery steady state: near target, high utilization.
  EXPECT_NEAR(r.mean_qdelay_ms, 20.0, 10.0);
  EXPECT_GT(r.utilization, 0.9);
}

TEST(Robustness, SingleFlowSaturatesAloneAtTarget) {
  DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{20}};
  cfg.aqm.type = AqmType::kPi2;
  cfg.aqm.ecn = false;
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kReno;
  flow.base_rtt = from_millis(50);
  cfg.tcp_flows = {flow};
  const auto r = run_dumbbell(cfg);
  EXPECT_GT(r.mean_goodput_mbps(tcp::CcType::kReno), 8.5);
  EXPECT_LT(r.p99_qdelay_ms, 60.0);
}

}  // namespace
}  // namespace pi2::scenario
