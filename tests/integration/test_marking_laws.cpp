// Appendix A, equations (11) vs (12): DCTCP's steady-state window is
// W = 2/p under *probabilistic* (PI-driven) marking but W = 2/p^2 under a
// *step threshold* (on-off marking trains) — the distinction that explains
// why the paper can feed the PI output p' straight to DCTCP. End-to-end
// validation with real flows against both marker types.
#include <gtest/gtest.h>

#include <cmath>

#include "control/window_laws.hpp"
#include "scenario/dumbbell.hpp"

namespace pi2::scenario {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;
using std::chrono::seconds;

RunResult run_dctcp_over(AqmType aqm, pi2::sim::Duration target) {
  DumbbellConfig cfg;
  cfg.link_rate_bps = 40e6;
  cfg.duration = Time{seconds{60}};
  cfg.stats_start = Time{seconds{20}};
  cfg.aqm.type = aqm;
  cfg.aqm.target = target;
  TcpFlowSpec flow;
  flow.cc = tcp::CcType::kDctcp;
  flow.count = 1;
  flow.base_rtt = from_millis(10);
  cfg.tcp_flows = {flow};
  return run_dumbbell(cfg);
}

double window_from(const RunResult& r, double rtt_ms) {
  const double mbps = r.mean_goodput_mbps(tcp::CcType::kDctcp);
  return mbps * 1e6 / 8.0 * (rtt_ms + r.mean_qdelay_ms) * 1e-3 / net::kDefaultMss;
}

TEST(MarkingLaws, ProbabilisticMarkingFollowsEquation11) {
  const auto r = run_dctcp_over(AqmType::kPi, from_millis(20));
  const double p = r.observed_signal_rate();
  ASSERT_GT(p, 0.001);
  const double w = window_from(r, 10.0);
  EXPECT_NEAR(w * p / 2.0, 1.0, 0.35) << "W=" << w << " p=" << p;
}

TEST(MarkingLaws, StepMarkingSignalsMoreForTheSameWindow) {
  // Under the step threshold the same window needs far more marks
  // (equation (12): p = sqrt(2/W) instead of 2/W): check the measured
  // marking fraction is much higher than the probabilistic one at a
  // comparable operating point.
  const auto step = run_dctcp_over(AqmType::kStep, from_millis(1));
  const auto pi = run_dctcp_over(AqmType::kPi, from_millis(20));
  const double p_step = step.observed_signal_rate();
  const double p_pi = pi.observed_signal_rate();
  ASSERT_GT(p_step, 0.0);
  ASSERT_GT(p_pi, 0.0);
  EXPECT_GT(p_step, 3.0 * p_pi);
  // And the on-off structure shows in the law: W p^2 / 2 near 1 for step.
  const double w = window_from(step, 10.0);
  const double law_step = w * p_step * p_step / 2.0;
  const double law_prob = w * p_step / 2.0;
  // The step run sits far closer to the quadratic law than the linear one.
  EXPECT_LT(std::abs(std::log(law_step)), std::abs(std::log(law_prob)));
}

TEST(MarkingLaws, StepMarkingStillSustainsThroughput) {
  const auto step = run_dctcp_over(AqmType::kStep, from_millis(1));
  EXPECT_GT(step.utilization, 0.85);
  // And holds a very shallow queue (that's its appeal in the data centre).
  EXPECT_LT(step.mean_qdelay_ms, 5.0);
}

}  // namespace
}  // namespace pi2::scenario
