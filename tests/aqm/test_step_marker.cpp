#include "aqm/step_marker.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace pi2::aqm {
namespace {

using pi2::net::Ecn;
using pi2::net::QueueDiscipline;
using pi2::sim::from_millis;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;

TEST(StepMarker, NoMarksBelowThreshold) {
  Simulator sim{1};
  FakeQueueView view;
  StepMarkerAqm step;
  step.install(sim, view);
  view.set_delay_seconds(0.0005);  // half the 1 ms threshold
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(step.enqueue(make_data_packet(Ecn::kEct1)),
              QueueDiscipline::Verdict::kAccept);
  }
  EXPECT_EQ(step.marks(), 0);
}

TEST(StepMarker, MarksEverythingAboveThreshold) {
  Simulator sim{1};
  FakeQueueView view;
  StepMarkerAqm step;
  step.install(sim, view);
  view.set_delay_seconds(0.002);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(step.enqueue(make_data_packet(Ecn::kEct1)),
              QueueDiscipline::Verdict::kMark);
  }
  EXPECT_EQ(step.marks(), 100);
}

TEST(StepMarker, NotEctPassesUnlessDropConfigured) {
  Simulator sim{1};
  FakeQueueView view;
  StepMarkerAqm pass;  // default: mark-only
  pass.install(sim, view);
  view.set_delay_seconds(0.01);
  EXPECT_EQ(pass.enqueue(make_data_packet(Ecn::kNotEct)),
            QueueDiscipline::Verdict::kAccept);

  StepMarkerAqm::Params params;
  params.drop_not_ect = true;
  StepMarkerAqm drop{params};
  drop.install(sim, view);
  EXPECT_EQ(drop.enqueue(make_data_packet(Ecn::kNotEct)),
            QueueDiscipline::Verdict::kDrop);
}

TEST(StepMarker, ThresholdIsExactBoundary) {
  Simulator sim{1};
  FakeQueueView view;
  StepMarkerAqm::Params params;
  params.threshold = from_millis(10);
  StepMarkerAqm step{params};
  step.install(sim, view);
  view.set_delay_seconds(0.010);  // exactly at threshold: mark
  EXPECT_EQ(step.enqueue(make_data_packet(Ecn::kEct0)),
            QueueDiscipline::Verdict::kMark);
  view.set_delay_seconds(0.00999);
  EXPECT_EQ(step.enqueue(make_data_packet(Ecn::kEct0)),
            QueueDiscipline::Verdict::kAccept);
}

}  // namespace
}  // namespace pi2::aqm
