#include <gtest/gtest.h>

#include "aqm/codel.hpp"
#include "aqm/red.hpp"
#include "test_support.hpp"

namespace pi2::aqm {
namespace {

using pi2::net::Ecn;
using pi2::net::QueueDiscipline;
using pi2::sim::from_millis;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;

// ----------------------------------------------------------------- RED ----

TEST(Red, NoSignalsBelowMinThreshold) {
  Simulator sim{1};
  FakeQueueView view;
  RedAqm red;
  red.install(sim, view);
  view.backlog_bytes_value = 1000;  // far below min_th
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(red.enqueue(make_data_packet()), QueueDiscipline::Verdict::kAccept);
  }
}

TEST(Red, SignalsBetweenThresholds) {
  Simulator sim{1};
  FakeQueueView view;
  RedAqm::Params params;
  params.weight = 1.0;  // track the instantaneous queue for the test
  RedAqm red{params};
  red.install(sim, view);
  view.backlog_bytes_value = (params.min_th_bytes + params.max_th_bytes) / 2;
  int signalled = 0;
  for (int i = 0; i < 5000; ++i) {
    if (red.enqueue(make_data_packet()) != QueueDiscipline::Verdict::kAccept) {
      ++signalled;
    }
  }
  EXPECT_GT(signalled, 0);
  // Mid-ramp: pb = max_p / 2 = 5%; the uniformization inflates it somewhat.
  EXPECT_GT(signalled, 100);
  EXPECT_LT(signalled, 2000);
}

TEST(Red, GentleModeRampsAboveMaxThreshold) {
  Simulator sim{1};
  FakeQueueView view;
  RedAqm::Params params;
  params.weight = 1.0;
  RedAqm red{params};
  red.install(sim, view);
  view.backlog_bytes_value = params.max_th_bytes * 3 / 2;  // in gentle ramp
  int signalled = 0;
  for (int i = 0; i < 1000; ++i) {
    if (red.enqueue(make_data_packet()) != QueueDiscipline::Verdict::kAccept) {
      ++signalled;
    }
  }
  // pb ~ 0.55 there.
  EXPECT_GT(signalled, 300);
}

TEST(Red, HardDropAtTwiceMaxThreshold) {
  Simulator sim{1};
  FakeQueueView view;
  RedAqm::Params params;
  params.weight = 1.0;
  params.ecn = false;
  RedAqm red{params};
  red.install(sim, view);
  view.backlog_bytes_value = params.max_th_bytes * 2 + 1000;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(red.enqueue(make_data_packet()), QueueDiscipline::Verdict::kDrop);
  }
}

TEST(Red, EwmaSmoothsBursts) {
  Simulator sim{1};
  FakeQueueView view;
  RedAqm red;  // default small weight
  red.install(sim, view);
  // A short burst above max_th must not move the average much.
  view.backlog_bytes_value = 200000;
  (void)red.enqueue(make_data_packet());
  EXPECT_LT(red.avg_queue_bytes(), 1000.0);
}

TEST(Red, MarksEcnCapablePackets) {
  Simulator sim{1};
  FakeQueueView view;
  RedAqm::Params params;
  params.weight = 1.0;
  RedAqm red{params};
  red.install(sim, view);
  view.backlog_bytes_value = params.max_th_bytes * 3 / 2;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(red.enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kDrop);
  }
}

// --------------------------------------------------------------- CoDel ----

class CodelHarness {
 public:
  explicit CodelHarness(CodelAqm::Params params = {}) : codel_(params) {
    codel_.install(sim_, view_);
    view_.backlog_bytes_value = 100000;  // keep the small-queue guard away
    view_.backlog_packets_value = 66;
  }

  /// Dequeues one packet whose sojourn time is `sojourn_ms`.
  QueueDiscipline::Verdict dequeue_with_sojourn(double sojourn_ms) {
    net::Packet p = make_data_packet();
    p.enqueued_at = sim_.now() - from_millis(sojourn_ms);
    const auto v = codel_.dequeue(p);
    sim_.run_until(sim_.now() + from_millis(1));
    return v;
  }

  Simulator sim_{1};
  FakeQueueView view_;
  CodelAqm codel_;
};

TEST(Codel, AcceptsWhileSojournBelowTarget) {
  CodelHarness h;
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(h.dequeue_with_sojourn(2.0), QueueDiscipline::Verdict::kAccept);
  }
}

TEST(Codel, SignalsAfterSojournAboveTargetForInterval) {
  CodelHarness h;
  int signalled = 0;
  for (int i = 0; i < 300; ++i) {
    if (h.dequeue_with_sojourn(20.0) != QueueDiscipline::Verdict::kAccept) {
      ++signalled;
    }
  }
  EXPECT_GT(signalled, 0);
  EXPECT_EQ(h.codel_.drop_count(), signalled);
}

TEST(Codel, SignallingRateAccelerates) {
  CodelHarness h;
  int first_half = 0;
  int second_half = 0;
  for (int i = 0; i < 2000; ++i) {
    if (h.dequeue_with_sojourn(50.0) != QueueDiscipline::Verdict::kAccept) {
      (i < 1000 ? first_half : second_half) += 1;
    }
  }
  EXPECT_GT(second_half, first_half);
}

TEST(Codel, RecoversWhenSojournFalls) {
  CodelHarness h;
  for (int i = 0; i < 500; ++i) h.dequeue_with_sojourn(50.0);
  // Below target again: no more signals.
  int signalled = 0;
  for (int i = 0; i < 200; ++i) {
    if (h.dequeue_with_sojourn(1.0) != QueueDiscipline::Verdict::kAccept) {
      ++signalled;
    }
  }
  EXPECT_EQ(signalled, 0);
}

TEST(Codel, MarksEcnCapableInsteadOfDropping) {
  CodelHarness h;
  for (int i = 0; i < 2000; ++i) {
    net::Packet p = make_data_packet(Ecn::kEct0);
    p.enqueued_at = h.sim_.now() - from_millis(50.0);
    EXPECT_NE(h.codel_.dequeue(p), QueueDiscipline::Verdict::kDrop);
    h.sim_.run_until(h.sim_.now() + from_millis(1));
  }
}

TEST(Codel, EnqueueIsAlwaysAccept) {
  CodelHarness h;
  EXPECT_EQ(h.codel_.enqueue(make_data_packet()), QueueDiscipline::Verdict::kAccept);
}

}  // namespace
}  // namespace pi2::aqm
