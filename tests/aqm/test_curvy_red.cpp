#include "aqm/curvy_red.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace pi2::aqm {
namespace {

using pi2::net::Ecn;
using pi2::net::QueueDiscipline;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;
using pi2::testing::signal_fraction;

class CurvyRedTest : public ::testing::Test {
 protected:
  void install(CurvyRedAqm::Params params) {
    params.weight = 1.0;  // track the instantaneous delay in unit tests
    aqm_ = std::make_unique<CurvyRedAqm>(params);
    aqm_->install(sim_, view_);
  }
  /// Feeds one packet to settle the EWMA at the pinned delay.
  void settle(double delay_s) {
    view_.set_delay_seconds(delay_s);
    (void)aqm_->enqueue(make_data_packet());
  }

  Simulator sim_{1};
  FakeQueueView view_;
  std::unique_ptr<CurvyRedAqm> aqm_;
};

TEST_F(CurvyRedTest, NoSignalsBelowRampStart) {
  install(CurvyRedAqm::Params{});
  settle(0.002);  // below the 5 ms ramp start
  EXPECT_DOUBLE_EQ(aqm_->scalable_probability(), 0.0);
  EXPECT_EQ(signal_fraction(*aqm_, Ecn::kEct1, 2000), 0.0);
}

TEST_F(CurvyRedTest, RampIsLinearInDelay) {
  install(CurvyRedAqm::Params{});
  settle(0.020);  // (20 - 5) / 30 = 0.5 of the ramp
  EXPECT_NEAR(aqm_->scalable_probability(), 0.5, 1e-9);
  settle(0.035);  // full ramp
  EXPECT_NEAR(aqm_->scalable_probability(), 1.0, 1e-9);
}

TEST_F(CurvyRedTest, ClassicIsCoupledSquare) {
  install(CurvyRedAqm::Params{});
  settle(0.020);
  const double ps = aqm_->scalable_probability();
  EXPECT_DOUBLE_EQ(aqm_->classic_probability(), (ps / 2.0) * (ps / 2.0));
}

TEST_F(CurvyRedTest, ScalableMarkedLinearlyClassicSquared) {
  install(CurvyRedAqm::Params{});
  settle(0.020);
  const double ps = aqm_->scalable_probability();
  const double f_scal = signal_fraction(*aqm_, Ecn::kEct1, 40000);
  EXPECT_NEAR(f_scal, ps, 0.02);
  const double f_classic = signal_fraction(*aqm_, Ecn::kNotEct, 40000);
  EXPECT_NEAR(f_classic, (ps / 2.0) * (ps / 2.0), 0.01);
}

TEST_F(CurvyRedTest, NotEctDroppedEct0Marked) {
  install(CurvyRedAqm::Params{});
  settle(0.035);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_NE(aqm_->enqueue(make_data_packet(Ecn::kNotEct)),
              QueueDiscipline::Verdict::kMark);
    EXPECT_NE(aqm_->enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kDrop);
  }
}

TEST_F(CurvyRedTest, EwmaSmoothsSpikes) {
  CurvyRedAqm::Params params;
  params.weight = 0.05;
  auto aqm = std::make_unique<CurvyRedAqm>(params);
  Simulator sim{1};
  FakeQueueView view;
  aqm->install(sim, view);
  view.set_delay_seconds(0.5);  // a sudden deep spike
  (void)aqm->enqueue(make_data_packet());
  // One sample at weight 0.05: avg ~ 25 ms, probability far below 1.
  EXPECT_LT(aqm->scalable_probability(), 0.8);
}

TEST_F(CurvyRedTest, StandingQueueIsTheControlSignal) {
  // Unlike PI2, halving the delay halves the ramp position immediately —
  // Curvy RED cannot hold a fixed target under varying load, it needs a
  // standing queue proportional to the required probability.
  install(CurvyRedAqm::Params{});
  settle(0.035);
  const double high = aqm_->scalable_probability();
  settle(0.0125);
  EXPECT_NEAR(aqm_->scalable_probability(), 0.25, 1e-9);
  EXPECT_LT(aqm_->scalable_probability(), high);
}

}  // namespace
}  // namespace pi2::aqm
