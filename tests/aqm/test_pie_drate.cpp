// PIE departure-rate estimation (the Linux/hardware path that converts
// queue length to queuing delay without timestamps).
#include <gtest/gtest.h>

#include "aqm/pie.hpp"
#include "test_support.hpp"

namespace pi2::aqm {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;

TEST(PieDrate, EstimateConvergesToActualDrainRate) {
  Simulator sim{1};
  FakeQueueView view;
  view.rate_bps = 10e6;
  PieAqm::Params params;
  params.departure_rate_estimation = true;
  PieAqm pie{params};
  pie.install(sim, view);

  // Keep a deep queue (above the 16 kB measurement threshold) and dequeue
  // 1500 B packets at exactly the link rate: 1.2 ms per packet.
  view.backlog_bytes_value = 200000;
  for (int i = 0; i < 200; ++i) {
    sim.run_until(sim.now() + from_millis(1.2));
    pie.dequeue(make_data_packet());
  }
  // qdelay estimate = backlog / estimated_rate should match backlog/true.
  const double truth = 200000.0 * 8.0 / 10e6;
  EXPECT_NEAR(pie.qdelay_estimate_s(), truth, truth * 0.1);
}

TEST(PieDrate, FallsBackToLinkRateWithoutSamples) {
  Simulator sim{1};
  FakeQueueView view;
  view.rate_bps = 10e6;
  PieAqm::Params params;
  params.departure_rate_estimation = true;
  PieAqm pie{params};
  pie.install(sim, view);
  view.backlog_bytes_value = 125000;  // 100 ms at 10 Mb/s
  EXPECT_NEAR(pie.qdelay_estimate_s(), 0.1, 1e-9);
}

TEST(PieDrate, NoMeasurementBelowThreshold) {
  // With less than 16 kB of backlog, no measurement cycle starts, so the
  // estimate keeps tracking the true link rate.
  Simulator sim{1};
  FakeQueueView view;
  view.rate_bps = 10e6;
  PieAqm::Params params;
  params.departure_rate_estimation = true;
  PieAqm pie{params};
  pie.install(sim, view);
  view.backlog_bytes_value = 8000;
  for (int i = 0; i < 50; ++i) {
    sim.run_until(sim.now() + from_millis(1.2));
    pie.dequeue(make_data_packet());
  }
  EXPECT_NEAR(pie.qdelay_estimate_s(), 8000.0 * 8.0 / 10e6, 1e-9);
}

TEST(PieDrate, TracksRateChange) {
  Simulator sim{1};
  FakeQueueView view;
  view.rate_bps = 10e6;
  PieAqm::Params params;
  params.departure_rate_estimation = true;
  PieAqm pie{params};
  pie.install(sim, view);
  view.backlog_bytes_value = 200000;
  for (int i = 0; i < 100; ++i) {
    sim.run_until(sim.now() + from_millis(1.2));
    pie.dequeue(make_data_packet());
  }
  // Halve the drain rate: 2.4 ms per packet now.
  for (int i = 0; i < 200; ++i) {
    sim.run_until(sim.now() + from_millis(2.4));
    pie.dequeue(make_data_packet());
  }
  const double truth = 200000.0 * 8.0 / 5e6;
  EXPECT_NEAR(pie.qdelay_estimate_s(), truth, truth * 0.15);
}

}  // namespace
}  // namespace pi2::aqm
