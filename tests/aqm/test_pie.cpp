#include "aqm/pie.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace pi2::aqm {
namespace {

using pi2::net::Ecn;
using pi2::net::QueueDiscipline;
using pi2::sim::from_millis;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;
using pi2::testing::signal_fraction;

PieAqm::Params test_params() {
  PieAqm::Params p;
  p.departure_rate_estimation = false;  // use the true link rate in tests
  return p;
}

class PieTest : public ::testing::Test {
 protected:
  void install(PieAqm::Params params) {
    pie_ = std::make_unique<PieAqm>(params);
    pie_->install(sim_, view_);
  }
  /// Advances by `n` update intervals with the queue pinned at `delay_s`.
  void run_updates(double delay_s, int n) {
    view_.set_delay_seconds(delay_s);
    sim_.run_until(sim_.now() + pie_->params().t_update * n);
  }

  Simulator sim_{1};
  FakeQueueView view_;
  std::unique_ptr<PieAqm> pie_;
};

TEST_F(PieTest, NoSignalsWhileQueueIsEmpty) {
  install(test_params());
  run_updates(0.0, 10);
  EXPECT_DOUBLE_EQ(pie_->classic_probability(), 0.0);
  EXPECT_EQ(pie_->enqueue(make_data_packet()), QueueDiscipline::Verdict::kAccept);
}

TEST_F(PieTest, ProbabilityRisesUnderSustainedOverload) {
  install(test_params());
  run_updates(0.200, 100);
  EXPECT_GT(pie_->classic_probability(), 0.01);
}

TEST_F(PieTest, AutotuneSlowsGrowthAtTinyProbability) {
  auto tuned = test_params();
  auto untuned = test_params();
  untuned.autotune = false;
  untuned.heuristics = false;
  tuned.heuristics = false;

  install(tuned);
  run_updates(0.050, 3);
  const double p_tuned = pie_->classic_probability();

  sim_.run_until(sim_.now());  // keep clock
  Simulator sim2{1};
  PieAqm pie2{untuned};
  FakeQueueView view2;
  pie2.install(sim2, view2);
  view2.set_delay_seconds(0.050);
  sim2.run_until(untuned.t_update * 3);
  EXPECT_LT(p_tuned, pie2.classic_probability());
}

TEST_F(PieTest, BurstAllowanceSuppressesEarlyDrops) {
  auto params = test_params();
  params.burst_allowance = from_millis(100);
  install(params);
  // Crank the probability high while still inside the burst window is
  // impossible (only 3 updates of 32 ms fit); every packet must pass.
  view_.set_delay_seconds(0.5);
  sim_.run_until(params.t_update * 2);
  EXPECT_EQ(signal_fraction(*pie_, Ecn::kNotEct, 1000), 0.0);
}

TEST_F(PieTest, BareVariantDropsInsideBurstWindow) {
  auto params = PieAqm::bare_params();
  params.departure_rate_estimation = false;
  install(params);
  view_.set_delay_seconds(0.5);
  sim_.run_until(params.t_update * 3);
  EXPECT_GT(signal_fraction(*pie_, Ecn::kNotEct, 2000), 0.0);
}

TEST_F(PieTest, SafeguardSuppressesDropsAtLowProbabilityAndDelay) {
  install(test_params());
  run_updates(0.200, 40);  // raise p somewhat
  const double p = pie_->classic_probability();
  ASSERT_GT(p, 0.0);
  if (p < 0.2) {
    // Drop the measured delay below target/2; heuristics must gate drops.
    run_updates(0.001, 1);
    view_.set_delay_seconds(0.001);
    EXPECT_EQ(signal_fraction(*pie_, Ecn::kNotEct, 1000), 0.0);
  }
}

TEST_F(PieTest, DropFrequencyMatchesProbability) {
  auto params = test_params();
  params.heuristics = false;
  params.autotune = false;
  install(params);
  run_updates(0.100, 30);
  const double p = pie_->classic_probability();
  ASSERT_GT(p, 0.02);
  view_.backlog_bytes_value = 100000;  // keep the small-queue guard away
  const double f = signal_fraction(*pie_, Ecn::kNotEct, 20000);
  EXPECT_NEAR(f, p, 3.0 * std::sqrt(p / 20000) + 0.01);
}

TEST_F(PieTest, EcnMarkedBelowThresholdDroppedAbove) {
  auto params = test_params();
  params.heuristics = false;
  params.autotune = false;
  params.ecn_drop_threshold = 0.1;
  install(params);
  run_updates(0.050, 6);
  ASSERT_LE(pie_->classic_probability(), 0.1);
  ASSERT_GT(pie_->classic_probability(), 0.0);
  // Below threshold: ECT packets can only be marked.
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(pie_->enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kDrop);
  }
  run_updates(0.500, 200);
  ASSERT_GT(pie_->classic_probability(), 0.1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(pie_->enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kMark);
  }
}

TEST_F(PieTest, NotEctNeverMarked) {
  auto params = test_params();
  params.heuristics = false;
  install(params);
  run_updates(0.300, 100);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(pie_->enqueue(make_data_packet(Ecn::kNotEct)),
              QueueDiscipline::Verdict::kMark);
  }
}

TEST_F(PieTest, IdleDecayDrainsProbability) {
  install(test_params());
  run_updates(0.300, 60);
  const double high = pie_->classic_probability();
  ASSERT_GT(high, 0.0);
  run_updates(0.0, 400);
  EXPECT_LT(pie_->classic_probability(), high * 0.1);
}

TEST_F(PieTest, DeltaClampLimitsStepAtHighProbability) {
  auto params = test_params();
  install(params);
  run_updates(0.300, 200);
  const double p1 = pie_->classic_probability();
  ASSERT_GE(p1, 0.1);
  run_updates(10.0, 1);  // enormous error; dp must be clamped to 2%
  EXPECT_LE(pie_->classic_probability() - p1, 0.02 + 1e-9);
}

TEST(PieTune, TableMatchesRfc8033Steps) {
  EXPECT_DOUBLE_EQ(PieAqm::tune_factor(0.5), 1.0);
  EXPECT_DOUBLE_EQ(PieAqm::tune_factor(0.05), 0.5);
  EXPECT_DOUBLE_EQ(PieAqm::tune_factor(0.005), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(PieAqm::tune_factor(0.0005), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(PieAqm::tune_factor(0.00005), 1.0 / 128.0);
  EXPECT_DOUBLE_EQ(PieAqm::tune_factor(0.000005), 1.0 / 512.0);
  EXPECT_DOUBLE_EQ(PieAqm::tune_factor(0.0000005), 1.0 / 2048.0);
}

TEST(PieTune, TracksSqrtTwoPWithinAFactor) {
  // Figure 5: the stepped 'tune' broadly fits sqrt(2p). Check the ratio
  // stays within a factor of ~2.9 across the table's range.
  for (double p = 2e-6; p <= 0.5; p *= 1.7) {
    const double tune = PieAqm::tune_factor(p);
    const double ideal = std::sqrt(2.0 * p);
    const double ratio = tune / ideal;
    EXPECT_GT(ratio, 1.0 / 3.0) << "p=" << p;
    EXPECT_LT(ratio, 3.0) << "p=" << p;
  }
}

TEST(PieDefaults, MatchTable1) {
  PieAqm::Params p;
  EXPECT_EQ(p.target, from_millis(20));
  EXPECT_DOUBLE_EQ(p.alpha_hz, 2.0 / 16.0);
  EXPECT_DOUBLE_EQ(p.beta_hz, 20.0 / 16.0);
  EXPECT_EQ(p.burst_allowance, from_millis(100));
}

TEST(PieDefaults, BareParamsDisableHeuristicsKeepAutotune) {
  const auto p = PieAqm::bare_params();
  EXPECT_FALSE(p.heuristics);
  EXPECT_TRUE(p.autotune);
}

}  // namespace
}  // namespace pi2::aqm
