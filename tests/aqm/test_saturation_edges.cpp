// Saturation edge cases: disciplines pushed to p' -> 1 must clamp and keep
// signalling sanely, and PI-family controllers on a queue that never fills
// must stay silently at zero without tripping their guards.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "aqm/curvy_red.hpp"
#include "aqm/pi.hpp"
#include "aqm/pie.hpp"
#include "aqm/step_marker.hpp"
#include "core/coupled_pi2.hpp"
#include "core/pi2.hpp"
#include "test_support.hpp"

namespace pi2::aqm {
namespace {

using pi2::net::Ecn;
using pi2::net::QueueDiscipline;
using pi2::sim::from_seconds;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;
using pi2::testing::signal_fraction;

// --- Step marker at saturation ----------------------------------------------

TEST(SaturationEdges, StepMarkerSaturatesToMarkingEveryEctPacket) {
  Simulator sim{1};
  FakeQueueView view;
  StepMarkerAqm step;
  step.install(sim, view);
  view.set_delay_seconds(10.0);  // 10000x the 1 ms threshold
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(step.enqueue(make_data_packet(Ecn::kEct1)),
              QueueDiscipline::Verdict::kMark);
  }
  EXPECT_EQ(step.marks(), 1000);
  // Mark-only default: Not-ECT sails through even at extreme backlog.
  EXPECT_EQ(step.enqueue(make_data_packet(Ecn::kNotEct)),
            QueueDiscipline::Verdict::kAccept);
}

TEST(SaturationEdges, StepDropperDropsEveryNotEctPacketAtSaturation) {
  Simulator sim{1};
  FakeQueueView view;
  StepMarkerAqm::Params params;
  params.drop_not_ect = true;
  StepMarkerAqm step{params};
  step.install(sim, view);
  view.set_delay_seconds(10.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(step.enqueue(make_data_packet(Ecn::kNotEct)),
              QueueDiscipline::Verdict::kDrop);
  }
}

// --- Curvy RED at saturation -------------------------------------------------

TEST(SaturationEdges, CurvyRedClampsScalableProbabilityAtOne) {
  CurvyRedAqm::Params params;
  params.weight = 1.0;
  CurvyRedAqm aqm{params};
  Simulator sim{1};
  FakeQueueView view;
  aqm.install(sim, view);
  view.set_delay_seconds(5.0);  // delay far beyond the full ramp
  (void)aqm.enqueue(make_data_packet());
  EXPECT_DOUBLE_EQ(aqm.scalable_probability(), 1.0);
  // The coupling survives the clamp: p_c = (1/k)^2, not 1.
  const double k = params.k;
  EXPECT_DOUBLE_EQ(aqm.classic_probability(), (1.0 / k) * (1.0 / k));
}

TEST(SaturationEdges, CurvyRedAtFullRampMarksAllScalableButOnlyCoupledClassic) {
  CurvyRedAqm::Params params;
  params.weight = 1.0;
  CurvyRedAqm aqm{params};
  Simulator sim{1};
  FakeQueueView view;
  aqm.install(sim, view);
  view.set_delay_seconds(5.0);
  (void)aqm.enqueue(make_data_packet());
  // Scalable: every ECT(1) packet marked at p_s = 1.
  EXPECT_DOUBLE_EQ(signal_fraction(aqm, Ecn::kEct1, 2000), 1.0);
  // Classic: the squared-coupled 25%, NOT a 100% drop storm.
  const double f_classic = signal_fraction(aqm, Ecn::kNotEct, 40000);
  EXPECT_NEAR(f_classic, 0.25, 0.02);
}

// --- PI-family controllers on an always-empty queue --------------------------

template <typename Aqm>
void expect_silent_on_empty_queue(Aqm& aqm, pi2::sim::Duration t_update) {
  Simulator sim{1};
  FakeQueueView view;
  aqm.install(sim, view);
  view.set_delay_seconds(0.0);
  // Many update intervals with an empty queue: the integrator must pin the
  // probability at its lower clamp without a single guard event.
  sim.run_until(sim.now() + t_update * 200);
  EXPECT_DOUBLE_EQ(aqm.classic_probability(), 0.0);
  EXPECT_EQ(aqm.guard_events(), 0u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(aqm.enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kAccept);
    EXPECT_EQ(aqm.enqueue(make_data_packet(Ecn::kNotEct)),
              QueueDiscipline::Verdict::kAccept);
  }
  EXPECT_DOUBLE_EQ(aqm.classic_probability(), 0.0);
  EXPECT_EQ(aqm.guard_events(), 0u);
}

TEST(SaturationEdges, PiStaysSilentOnEmptyQueue) {
  PiAqm aqm;
  expect_silent_on_empty_queue(aqm, aqm.params().t_update);
}

TEST(SaturationEdges, PieStaysSilentOnEmptyQueue) {
  PieAqm aqm;
  expect_silent_on_empty_queue(aqm, aqm.params().t_update);
}

TEST(SaturationEdges, Pi2StaysSilentOnEmptyQueue) {
  core::Pi2Aqm aqm;
  expect_silent_on_empty_queue(aqm, aqm.params().t_update);
}

TEST(SaturationEdges, CoupledPi2StaysSilentOnEmptyQueue) {
  core::CoupledPi2Aqm aqm;
  expect_silent_on_empty_queue(aqm, aqm.params().t_update);
  EXPECT_DOUBLE_EQ(aqm.scalable_probability(), 0.0);
}

// --- PI2 overload caps -------------------------------------------------------

TEST(SaturationEdges, Pi2CapsClassicProbabilityUnderOverload) {
  core::Pi2Aqm aqm;
  Simulator sim{1};
  FakeQueueView view;
  aqm.install(sim, view);
  view.set_delay_seconds(2.0);  // hopeless overload, 100x the target
  sim.run_until(sim.now() + aqm.params().t_update * 500);
  // p' saturates at sqrt(max_classic_prob): the applied probability must sit
  // exactly at the overload cap, never above it.
  EXPECT_DOUBLE_EQ(aqm.classic_probability(), aqm.params().max_classic_prob);
  EXPECT_EQ(aqm.guard_events(), 0u);
}

TEST(SaturationEdges, CoupledPi2CapsScalableAtKTimesRootOfClassicCap) {
  core::CoupledPi2Aqm aqm;
  Simulator sim{1};
  FakeQueueView view;
  aqm.install(sim, view);
  view.set_delay_seconds(2.0);
  sim.run_until(sim.now() + aqm.params().t_update * 500);
  const double cap =
      aqm.params().k * std::sqrt(aqm.params().max_classic_prob);
  EXPECT_DOUBLE_EQ(aqm.scalable_probability(), cap);
  EXPECT_DOUBLE_EQ(aqm.classic_probability(), aqm.params().max_classic_prob);
  EXPECT_EQ(aqm.guard_events(), 0u);
}

}  // namespace
}  // namespace pi2::aqm
