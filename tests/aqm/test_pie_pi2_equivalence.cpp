// Section 4's analytic claim, tested numerically: PIE's stepped 'tune'
// scaling of the PI delta is broadly equivalent to running the unscaled PI
// on a pseudo-probability p' and squaring the output —
//   p <- (p' + K pi(tau))^2 ~ p + 2 K p' pi(tau),  with K_PIE ~ 1/sqrt(2).
//
// We drive both controllers with identical queue-delay trajectories and
// compare the *applied* probabilities.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "aqm/pi_core.hpp"
#include "aqm/pie.hpp"

namespace pi2::aqm {
namespace {

/// Applied probability after driving a PIE-style controller (tune-scaled
/// deltas, output applied directly) along the delay trajectory.
double pie_applied(const std::vector<double>& qdelay_s, double target_s) {
  PiCore pi{0.125, 1.25};
  for (const double d : qdelay_s) {
    const double dp = pi.delta(d, target_s) * PieAqm::tune_factor(pi.prob());
    pi.integrate(dp, d);
  }
  return pi.prob();
}

/// Applied probability after driving the PI2 controller (same base gains,
/// unscaled, output squared) along the same trajectory.
double pi2_applied(const std::vector<double>& qdelay_s, double target_s) {
  PiCore pi{0.125, 1.25};
  for (const double d : qdelay_s) pi.update(d, target_s);
  return pi.prob() * pi.prob();
}

std::vector<double> ramp_then_hold(double to_s, int ramp_steps, int hold_steps) {
  std::vector<double> out;
  for (int i = 0; i < ramp_steps; ++i) {
    out.push_back(to_s * (i + 1) / ramp_steps);
  }
  out.insert(out.end(), static_cast<std::size_t>(hold_steps), to_s);
  return out;
}

class PiePi2Equivalence : public ::testing::TestWithParam<double> {};

TEST_P(PiePi2Equivalence, AppliedProbabilitiesAgreeWithinSmallFactor) {
  // Sustained delay excursions of different magnitudes; after the
  // transient both schemes must have integrated to probabilities of the
  // same order (the paper: "broadly equivalent", K ratios within ~sqrt(2)).
  const double excess_s = GetParam();
  const auto trajectory = ramp_then_hold(excess_s, 50, 2000);
  const double p_pie = pie_applied(trajectory, 0.02);
  const double p_pi2 = pi2_applied(trajectory, 0.02);
  ASSERT_GT(p_pie, 0.0);
  ASSERT_GT(p_pi2, 0.0);
  const double log_ratio = std::abs(std::log10(p_pi2 / p_pie));
  EXPECT_LT(log_ratio, 0.8) << "pie=" << p_pie << " pi2=" << p_pi2;
}

INSTANTIATE_TEST_SUITE_P(DelayExcursions, PiePi2Equivalence,
                         ::testing::Values(0.03, 0.05, 0.1, 0.2));

TEST(PiePi2Equivalence, Pi2ReachesLowOperatingProbabilitiesFaster) {
  // The responsiveness gain of removing the table shows at low p, where
  // PIE's tune factor crushes the delta by orders of magnitude: count the
  // update intervals each controller needs to first apply p >= 0.001 under
  // a sustained small excursion.
  const double target = 0.02;
  const double excursion = 0.03;
  auto updates_until = [&](bool pie) {
    PiCore pi{0.125, 1.25};
    for (int i = 1; i <= 100000; ++i) {
      double dp = pi.delta(excursion, target);
      if (pie) dp *= PieAqm::tune_factor(pi.prob());
      pi.integrate(dp, excursion);
      const double applied = pie ? pi.prob() : pi.prob() * pi.prob();
      if (applied >= 0.001) return i;
    }
    return 100000;
  };
  const int n_pie = updates_until(true);
  const int n_pi2 = updates_until(false);
  EXPECT_LT(n_pi2, n_pie);
  EXPECT_LE(n_pi2, 5);  // PI2 gets there within a few intervals
}

TEST(PiePi2Equivalence, BothDecayToZeroWhenQueueEmpties) {
  auto trajectory = ramp_then_hold(0.1, 20, 200);
  trajectory.insert(trajectory.end(), 20000, 0.0);
  EXPECT_DOUBLE_EQ(pie_applied(trajectory, 0.02), 0.0);
  EXPECT_DOUBLE_EQ(pi2_applied(trajectory, 0.02), 0.0);
}

}  // namespace
}  // namespace pi2::aqm
