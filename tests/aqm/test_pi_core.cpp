#include "aqm/pi_core.hpp"

#include <gtest/gtest.h>

namespace pi2::aqm {
namespace {

TEST(PiCore, StartsAtZeroProbability) {
  PiCore pi{0.125, 1.25};
  EXPECT_DOUBLE_EQ(pi.prob(), 0.0);
}

TEST(PiCore, IntegralTermPushesTowardsTarget) {
  PiCore pi{0.125, 1.25};
  // Hold delay 100 ms above a 20 ms target: p must rise every update.
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    pi.update(0.120, 0.020);
    EXPECT_GT(pi.prob(), prev);
    prev = pi.prob();
  }
}

TEST(PiCore, FirstUpdateMatchesEquation4) {
  PiCore pi{0.125, 1.25};
  // From rest: dp = alpha*(tau - tau0) + beta*(tau - 0).
  pi.update(0.1, 0.02);
  EXPECT_NEAR(pi.prob(), 0.125 * (0.1 - 0.02) + 1.25 * 0.1, 1e-12);
}

TEST(PiCore, ProportionalTermReactsToQueueGrowth) {
  PiCore pi{0.125, 1.25};
  pi.update(0.020, 0.020);  // on target: only records delay
  const double base = pi.prob();
  pi.update(0.030, 0.020);  // grew by 10 ms
  // dp = alpha*10ms + beta*10ms.
  EXPECT_NEAR(pi.prob() - base, 0.125 * 0.010 + 1.25 * 0.010, 1e-12);
}

TEST(PiCore, ShrinkingQueueReducesProbability) {
  PiCore pi{0.125, 1.25};
  for (int i = 0; i < 20; ++i) pi.update(0.1, 0.02);
  const double high = pi.prob();
  pi.update(0.0, 0.02);  // queue empties
  EXPECT_LT(pi.prob(), high);
}

TEST(PiCore, ClampedToZero) {
  PiCore pi{0.125, 1.25};
  for (int i = 0; i < 100; ++i) pi.update(0.0, 0.02);
  EXPECT_DOUBLE_EQ(pi.prob(), 0.0);
}

TEST(PiCore, ClampedToMax) {
  PiCore pi{0.125, 1.25, 0.5};
  for (int i = 0; i < 1000; ++i) pi.update(10.0, 0.02);
  EXPECT_DOUBLE_EQ(pi.prob(), 0.5);
}

TEST(PiCore, SteadyAtTargetHoldsProbability) {
  PiCore pi{0.125, 1.25};
  for (int i = 0; i < 20; ++i) pi.update(0.1, 0.02);
  const double p = pi.prob();
  pi.update(pi.prev_qdelay_s(), pi.prev_qdelay_s());  // on (moved) target
  EXPECT_NEAR(pi.prob(), p, 1e-12);
}

TEST(PiCore, DecayScalesProbability) {
  PiCore pi{0.125, 1.25};
  pi.update(0.1, 0.02);
  const double p = pi.prob();
  pi.decay(0.98);
  EXPECT_DOUBLE_EQ(pi.prob(), p * 0.98);
}

TEST(PiCore, ResetClearsState) {
  PiCore pi{0.125, 1.25};
  pi.update(0.1, 0.02);
  pi.reset();
  EXPECT_DOUBLE_EQ(pi.prob(), 0.0);
  EXPECT_DOUBLE_EQ(pi.prev_qdelay_s(), 0.0);
}

TEST(PiCore, DeltaDoesNotMutate) {
  PiCore pi{0.125, 1.25};
  const double d1 = pi.delta(0.1, 0.02);
  const double d2 = pi.delta(0.1, 0.02);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_DOUBLE_EQ(pi.prob(), 0.0);
}

TEST(PiCore, GainsAreExposed) {
  PiCore pi{0.3125, 3.125};
  EXPECT_DOUBLE_EQ(pi.alpha_hz(), 0.3125);
  EXPECT_DOUBLE_EQ(pi.beta_hz(), 3.125);
}

}  // namespace
}  // namespace pi2::aqm
