#include "aqm/pi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace pi2::aqm {
namespace {

using pi2::net::Ecn;
using pi2::net::QueueDiscipline;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;
using pi2::testing::signal_fraction;

class PiTest : public ::testing::Test {
 protected:
  void install(PiAqm::Params params) {
    pi_ = std::make_unique<PiAqm>(params);
    pi_->install(sim_, view_);
  }
  void run_updates(double delay_s, int n) {
    view_.set_delay_seconds(delay_s);
    sim_.run_until(sim_.now() + pi_->params().t_update * n);
  }

  Simulator sim_{1};
  FakeQueueView view_;
  std::unique_ptr<PiAqm> pi_;
};

TEST_F(PiTest, AppliesProbabilityDirectly) {
  install(PiAqm::Params{});
  run_updates(0.100, 20);
  const double p = pi_->classic_probability();
  ASSERT_GT(p, 0.05);
  const double f = signal_fraction(*pi_, Ecn::kNotEct, 20000);
  EXPECT_NEAR(f, p, 3.0 * std::sqrt(p / 20000) + 0.01);
}

TEST_F(PiTest, ScalableAndClassicProbabilitiesCoincide) {
  install(PiAqm::Params{});
  run_updates(0.100, 20);
  EXPECT_DOUBLE_EQ(pi_->classic_probability(), pi_->scalable_probability());
}

TEST_F(PiTest, MarksEcnCapableTraffic) {
  install(PiAqm::Params{});
  run_updates(0.200, 50);
  ASSERT_GT(pi_->classic_probability(), 0.1);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_NE(pi_->enqueue(make_data_packet(Ecn::kEct1)),
              QueueDiscipline::Verdict::kDrop);
    EXPECT_NE(pi_->enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kDrop);
  }
}

TEST_F(PiTest, DropsWhenEcnDisabled) {
  PiAqm::Params params;
  params.ecn = false;
  install(params);
  run_updates(0.200, 50);
  ASSERT_GT(pi_->classic_probability(), 0.1);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_NE(pi_->enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kMark);
  }
}

TEST_F(PiTest, ConvergesDownWhenQueueClears) {
  install(PiAqm::Params{});
  run_updates(0.200, 50);
  const double high = pi_->classic_probability();
  // The integral term drains p by alpha*target per update; give it enough
  // intervals to hit the floor.
  run_updates(0.0, 500);
  EXPECT_LT(pi_->classic_probability(), high);
  EXPECT_DOUBLE_EQ(pi_->classic_probability(), 0.0);
}

TEST_F(PiTest, MaxProbCapsOutput) {
  PiAqm::Params params;
  params.max_prob = 0.3;
  install(params);
  run_updates(1.0, 500);
  EXPECT_DOUBLE_EQ(pi_->classic_probability(), 0.3);
}

TEST_F(PiTest, GainsAffectResponseSpeed) {
  install(PiAqm::Params{});
  run_updates(0.100, 5);
  const double slow = pi_->classic_probability();

  Simulator sim2{1};
  FakeQueueView view2;
  PiAqm::Params fast_params;
  fast_params.alpha_hz = 0.625;
  fast_params.beta_hz = 6.25;
  PiAqm fast{fast_params};
  fast.install(sim2, view2);
  view2.set_delay_seconds(0.100);
  sim2.run_until(fast_params.t_update * 5);
  EXPECT_GT(fast.classic_probability(), slow);
}

}  // namespace
}  // namespace pi2::aqm
