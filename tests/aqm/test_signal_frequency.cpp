// Cross-AQM property: for every discipline, the empirical signalling
// frequency at a pinned queue state must match the probability the
// discipline itself reports, for each traffic class — the contract the
// whole evaluation rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "aqm/pie.hpp"
#include "scenario/aqm_factory.hpp"
#include "test_support.hpp"

namespace pi2::scenario {
namespace {

using pi2::net::Ecn;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;

struct Case {
  AqmType type;
  double pinned_delay_s;
};

std::ostream& operator<<(std::ostream& os, const Case& c) {
  return os << to_string(c.type) << "_at_" << c.pinned_delay_s << "s";
}

class SignalFrequency : public ::testing::TestWithParam<Case> {};

TEST_P(SignalFrequency, ClassicMatchesReportedProbability) {
  const Case c = GetParam();
  Simulator sim{1};
  FakeQueueView view;
  AqmConfig cfg;
  cfg.type = c.type;
  cfg.ecn = false;
  if (c.type == AqmType::kPie || c.type == AqmType::kBarePie) {
    // Bypass PIE's burst/safeguard heuristics and rate estimator so the
    // frequency test isolates the decision stage.
    cfg.type = AqmType::kBarePie;
  }
  auto disc = cfg.make();
  auto* pie = dynamic_cast<pi2::aqm::PieAqm*>(disc.get());
  if (pie != nullptr) {
    // Re-make with estimation off: construct params directly.
    auto params = aqm::PieAqm::bare_params();
    params.departure_rate_estimation = false;
    params.ecn = false;
    disc = std::make_unique<pi2::aqm::PieAqm>(params);
  }
  disc->install(sim, view);
  view.set_delay_seconds(c.pinned_delay_s);
  sim.run_until(pi2::sim::from_seconds(5.0));  // let the controller settle
  // Prime EWMA-based disciplines (Curvy RED) until their average has
  // converged on the pinned state.
  for (int i = 0; i < 500; ++i) (void)disc->enqueue(make_data_packet(Ecn::kNotEct));

  const double reported = disc->classic_probability();
  constexpr int kTrials = 60000;
  int signalled = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (disc->enqueue(make_data_packet(Ecn::kNotEct)) !=
        net::QueueDiscipline::Verdict::kAccept) {
      ++signalled;
    }
  }
  const double f = static_cast<double>(signalled) / kTrials;
  const double sigma = std::sqrt(std::max(reported, 1e-4) / kTrials);
  EXPECT_NEAR(f, reported, 5.0 * sigma + 0.01) << "reported=" << reported;
}

TEST_P(SignalFrequency, ScalableMatchesReportedProbability) {
  const Case c = GetParam();
  Simulator sim{1};
  FakeQueueView view;
  AqmConfig cfg;
  cfg.type = c.type;
  auto disc = cfg.make();
  if (auto* pie = dynamic_cast<pi2::aqm::PieAqm*>(disc.get())) {
    auto params = pie->params();
    params.departure_rate_estimation = false;
    params.heuristics = false;
    params.ecn_drop_threshold = 1.0;
    disc = std::make_unique<pi2::aqm::PieAqm>(params);
  }
  disc->install(sim, view);
  view.set_delay_seconds(c.pinned_delay_s);
  sim.run_until(pi2::sim::from_seconds(5.0));
  for (int i = 0; i < 500; ++i) (void)disc->enqueue(make_data_packet(Ecn::kEct1));

  // The standalone Pi2Aqm is the Classic-only AQM of Figure 8: it applies
  // the squared probability to *all* traffic (its scalable_probability()
  // exposes the internal p'); every other discipline applies the scalable
  // probability to ECT(1) packets directly.
  const double reported = c.type == AqmType::kPi2 ? disc->classic_probability()
                                                  : disc->scalable_probability();
  constexpr int kTrials = 60000;
  int signalled = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (disc->enqueue(make_data_packet(Ecn::kEct1)) !=
        net::QueueDiscipline::Verdict::kAccept) {
      ++signalled;
    }
  }
  const double f = static_cast<double>(signalled) / kTrials;
  const double sigma = std::sqrt(std::max(reported, 1e-4) / kTrials);
  EXPECT_NEAR(f, reported, 5.0 * sigma + 0.01) << "reported=" << reported;
}

INSTANTIATE_TEST_SUITE_P(
    AcrossAqmsAndDelays, SignalFrequency,
    ::testing::Values(Case{AqmType::kPi, 0.05}, Case{AqmType::kPi, 0.15},
                      Case{AqmType::kPi2, 0.05}, Case{AqmType::kPi2, 0.15},
                      Case{AqmType::kCoupledPi2, 0.05},
                      Case{AqmType::kCoupledPi2, 0.15},
                      Case{AqmType::kBarePie, 0.05},
                      Case{AqmType::kBarePie, 0.15},
                      Case{AqmType::kCurvyRed, 0.02},
                      Case{AqmType::kCurvyRed, 0.03}));

// The central invariant of the whole paper, checked across every coupled
// discipline: classic probability == (scalable probability / k)^2.
class CouplingInvariant : public ::testing::TestWithParam<AqmType> {};

TEST_P(CouplingInvariant, SquareLawHolds) {
  Simulator sim{1};
  FakeQueueView view;
  AqmConfig cfg;
  cfg.type = GetParam();
  auto disc = cfg.make();
  disc->install(sim, view);
  view.set_delay_seconds(0.08);
  sim.run_until(pi2::sim::from_seconds(5.0));
  // Prime EWMA-based disciplines so their average reflects the state.
  for (int i = 0; i < 500; ++i) (void)disc->enqueue(make_data_packet(Ecn::kNotEct));
  const double ps = disc->scalable_probability();
  const double pc = disc->classic_probability();
  ASSERT_GT(ps, 0.0);
  EXPECT_NEAR(pc, (ps / 2.0) * (ps / 2.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(CoupledAqms, CouplingInvariant,
                         ::testing::Values(AqmType::kCoupledPi2,
                                           AqmType::kCurvyRed));

}  // namespace
}  // namespace pi2::scenario
