#include "net/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "sim/simulator.hpp"

namespace pi2::net {
namespace {

using pi2::sim::from_seconds;
using pi2::sim::Simulator;

Packet data_packet(std::int32_t flow, std::int64_t seq) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  return p;
}

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : link_(sim_, config(), std::make_unique<FifoTailDrop>()) {
    trace_.attach(link_);
  }
  static BottleneckLink::Config config() {
    BottleneckLink::Config c;
    c.rate_bps = 1.2e6;  // 10 ms per packet
    c.buffer_packets = 4;
    return c;
  }

  Simulator sim_{1};
  BottleneckLink link_;
  PacketTrace trace_;
};

TEST_F(TraceTest, RecordsEnqueueAndDeparturePairs) {
  link_.send(data_packet(0, 0));
  link_.send(data_packet(0, 1));
  sim_.run();
  EXPECT_EQ(trace_.count(TraceEventType::kEnqueue), 2);
  EXPECT_EQ(trace_.count(TraceEventType::kDeparture), 2);
}

TEST_F(TraceTest, RecordsTailDrops) {
  for (int i = 0; i < 10; ++i) link_.send(data_packet(0, i));
  sim_.run();
  EXPECT_EQ(trace_.count(TraceEventType::kDropTail), 5);  // 1 tx + 4 buffered
}

TEST_F(TraceTest, DepartureCarriesSojourn) {
  link_.send(data_packet(0, 0));
  link_.send(data_packet(0, 1));
  sim_.run();
  const auto records = trace_.for_flow(0);
  double max_sojourn_ms = 0;
  for (const auto& r : records) {
    if (r.type == TraceEventType::kDeparture) {
      max_sojourn_ms = std::max(max_sojourn_ms, pi2::sim::to_millis(r.sojourn));
    }
  }
  EXPECT_NEAR(max_sojourn_ms, 20.0, 0.1);  // 10 ms wait + 10 ms serialization
}

TEST_F(TraceTest, PerFlowFilter) {
  link_.send(data_packet(0, 0));
  link_.send(data_packet(1, 0));
  sim_.run();
  EXPECT_EQ(trace_.for_flow(0).size(), 2u);  // enqueue + departure
  EXPECT_EQ(trace_.for_flow(1).size(), 2u);
  EXPECT_EQ(trace_.count(TraceEventType::kDeparture, 1), 1);
}

TEST_F(TraceTest, CapacityBoundsMemory) {
  PacketTrace small{4};
  small.attach(link_);
  for (int i = 0; i < 10; ++i) link_.send(data_packet(0, i));
  sim_.run();
  EXPECT_LE(small.records().size(), 4u);
  EXPECT_GT(small.dropped_records(), 0u);
}

TEST_F(TraceTest, CoexistsWithOtherProbes) {
  int departures_seen = 0;
  link_.add_departure_probe(
      [&](const Packet&, pi2::sim::Duration) { ++departures_seen; });
  link_.send(data_packet(0, 0));
  sim_.run();
  EXPECT_EQ(departures_seen, 1);
  EXPECT_EQ(trace_.count(TraceEventType::kDeparture), 1);
}

TEST_F(TraceTest, CsvExportHasHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "pi2_trace_test.csv";
  link_.send(data_packet(0, 0));
  sim_.run();
  ASSERT_TRUE(trace_.write_csv(path));
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t_s,event,flow,seq,size,ecn,sojourn_ms");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2);  // enqueue + departure
  std::remove(path.c_str());
}

TEST_F(TraceTest, ClearResets) {
  link_.send(data_packet(0, 0));
  sim_.run();
  trace_.clear();
  EXPECT_TRUE(trace_.records().empty());
}

TEST_F(TraceTest, CsvExportToUnwritablePathReturnsFalse) {
  link_.send(data_packet(0, 0));
  sim_.run();
  // /dev/null/... fails with ENOTDIR for any user, including root.
  EXPECT_FALSE(trace_.write_csv("/dev/null/pi2_trace_test.csv"));
}

TEST_F(TraceTest, ClearPreservesOverflowCounter) {
  PacketTrace small{2};
  small.attach(link_);
  for (int i = 0; i < 10; ++i) link_.send(data_packet(0, i));
  sim_.run();
  const std::size_t overflowed = small.dropped_records();
  ASSERT_GT(overflowed, 0u);
  small.clear();
  EXPECT_TRUE(small.records().empty());
  // Lifetime loss-of-visibility survives a clear(): resetting it would hide
  // that an earlier window overflowed.
  EXPECT_EQ(small.dropped_records(), overflowed);
}

}  // namespace
}  // namespace pi2::net
