#include "net/ecn.hpp"

#include <gtest/gtest.h>

namespace pi2::net {
namespace {

TEST(Ecn, CapabilityFollowsCodepoint) {
  EXPECT_FALSE(ecn_capable(Ecn::kNotEct));
  EXPECT_TRUE(ecn_capable(Ecn::kEct0));
  EXPECT_TRUE(ecn_capable(Ecn::kEct1));
  EXPECT_TRUE(ecn_capable(Ecn::kCe));
}

TEST(Ecn, ClassifierMatchesFigure9) {
  // ECT(1) and CE take the Scalable path; ECT(0) and Not-ECT the Classic.
  EXPECT_TRUE(is_scalable(Ecn::kEct1));
  EXPECT_TRUE(is_scalable(Ecn::kCe));
  EXPECT_FALSE(is_scalable(Ecn::kEct0));
  EXPECT_FALSE(is_scalable(Ecn::kNotEct));
}

TEST(Ecn, WireValuesMatchRfc3168) {
  EXPECT_EQ(static_cast<unsigned>(Ecn::kNotEct), 0b00u);
  EXPECT_EQ(static_cast<unsigned>(Ecn::kEct1), 0b01u);
  EXPECT_EQ(static_cast<unsigned>(Ecn::kEct0), 0b10u);
  EXPECT_EQ(static_cast<unsigned>(Ecn::kCe), 0b11u);
}

TEST(Ecn, NamesAreDistinct) {
  EXPECT_EQ(to_string(Ecn::kNotEct), "Not-ECT");
  EXPECT_EQ(to_string(Ecn::kEct0), "ECT(0)");
  EXPECT_EQ(to_string(Ecn::kEct1), "ECT(1)");
  EXPECT_EQ(to_string(Ecn::kCe), "CE");
}

}  // namespace
}  // namespace pi2::net
