#include "net/bottleneck_link.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace pi2::net {
namespace {

using pi2::sim::from_seconds;
using pi2::sim::Simulator;
using pi2::sim::Time;

Packet packet_of(std::int32_t flow, std::int32_t size = kDefaultMss) {
  Packet p;
  p.flow = flow;
  p.size = size;
  return p;
}

BottleneckLink::Config config_with(double rate_bps, std::int64_t buffer = 100) {
  BottleneckLink::Config c;
  c.rate_bps = rate_bps;
  c.buffer_packets = buffer;
  return c;
}

TEST(BottleneckLink, DeliversAtSerializationRate) {
  Simulator sim;
  // 12 kbit packet at 12 kb/s -> exactly 1 s per packet.
  BottleneckLink link{sim, config_with(12000.0), std::make_unique<FifoTailDrop>()};
  std::vector<Time> deliveries;
  link.set_sink([&](Packet) { deliveries.push_back(sim.now()); });
  link.send(packet_of(0, 1500));
  link.send(packet_of(0, 1500));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], from_seconds(1.0));
  EXPECT_EQ(deliveries[1], from_seconds(2.0));
}

TEST(BottleneckLink, PreservesFifoOrder) {
  Simulator sim;
  BottleneckLink link{sim, config_with(1e6), std::make_unique<FifoTailDrop>()};
  std::vector<std::int64_t> seqs;
  link.set_sink([&](Packet p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 10; ++i) {
    Packet p = packet_of(0);
    p.seq = i;
    link.send(p);
  }
  sim.run();
  ASSERT_EQ(seqs.size(), 10u);
  EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
}

TEST(BottleneckLink, TailDropsWhenBufferFull) {
  Simulator sim;
  BottleneckLink link{sim, config_with(1e6, 5), std::make_unique<FifoTailDrop>()};
  int delivered = 0;
  link.set_sink([&](Packet) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.send(packet_of(0));
  sim.run();
  // One in transmission + 5 buffered; the rest tail-dropped.
  EXPECT_EQ(delivered, 6);
  EXPECT_EQ(link.counters().tail_dropped, 4);
}

TEST(BottleneckLink, QueueDelayTracksBacklog) {
  Simulator sim;
  BottleneckLink link{sim, config_with(1.2e6), std::make_unique<FifoTailDrop>()};
  for (int i = 0; i < 11; ++i) link.send(packet_of(0, 1500));
  // Head packet is in transmission (not counted); 10 * 1500 B * 8 / 1.2 Mb/s
  // = 100 ms of backlog.
  EXPECT_EQ(link.backlog_packets(), 10);
  EXPECT_NEAR(pi2::sim::to_millis(link.queue_delay()), 100.0, 0.5);
}

TEST(BottleneckLink, RateChangeAppliesToNextTransmission) {
  Simulator sim;
  BottleneckLink link{sim, config_with(12000.0), std::make_unique<FifoTailDrop>()};
  std::vector<Time> deliveries;
  link.set_sink([&](Packet) { deliveries.push_back(sim.now()); });
  link.send(packet_of(0, 1500));  // 1 s at 12 kb/s
  link.send(packet_of(0, 1500));
  sim.at(from_seconds(0.5), [&] { link.set_rate_bps(24000.0); });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], from_seconds(1.0));   // unchanged mid-flight
  EXPECT_EQ(deliveries[1], from_seconds(1.5));   // second at doubled rate
}

TEST(BottleneckLink, BusyProbeCoversTransmissions) {
  Simulator sim;
  BottleneckLink link{sim, config_with(12000.0), std::make_unique<FifoTailDrop>()};
  double busy_s = 0.0;
  link.set_busy_probe([&](Time a, Time b) { busy_s += pi2::sim::to_seconds(b - a); });
  link.send(packet_of(0, 1500));
  link.send(packet_of(0, 1500));
  sim.run();
  EXPECT_NEAR(busy_s, 2.0, 1e-9);
}

TEST(BottleneckLink, DeparatureProbeReportsSojourn) {
  Simulator sim;
  BottleneckLink link{sim, config_with(12000.0), std::make_unique<FifoTailDrop>()};
  std::vector<double> sojourns;
  link.set_departure_probe([&](const Packet&, pi2::sim::Duration d) {
    sojourns.push_back(pi2::sim::to_seconds(d));
  });
  link.send(packet_of(0, 1500));
  link.send(packet_of(0, 1500));
  sim.run();
  ASSERT_EQ(sojourns.size(), 2u);
  EXPECT_NEAR(sojourns[0], 1.0, 1e-9);  // serialization only
  EXPECT_NEAR(sojourns[1], 2.0, 1e-9);  // 1 s wait + 1 s serialization
}

// Disciplines used to exercise the verdict plumbing.
class AlwaysDrop final : public QueueDiscipline {
 public:
  Verdict enqueue(const Packet&) override { return Verdict::kDrop; }
};

class AlwaysMark final : public QueueDiscipline {
 public:
  Verdict enqueue(const Packet&) override { return Verdict::kMark; }
};

class DropOddAtDequeue final : public QueueDiscipline {
 public:
  Verdict enqueue(const Packet&) override { return Verdict::kAccept; }
  Verdict dequeue(const Packet& p) override {
    return (p.seq % 2 == 1) ? Verdict::kDrop : Verdict::kAccept;
  }
};

TEST(BottleneckLink, AqmDropVerdictDiscards) {
  Simulator sim;
  BottleneckLink link{sim, config_with(1e6), std::make_unique<AlwaysDrop>()};
  int delivered = 0;
  link.set_sink([&](Packet) { ++delivered; });
  link.send(packet_of(0));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.counters().aqm_dropped, 1);
}

TEST(BottleneckLink, AqmMarkVerdictSetsCe) {
  Simulator sim;
  BottleneckLink link{sim, config_with(1e6), std::make_unique<AlwaysMark>()};
  Ecn seen = Ecn::kNotEct;
  link.set_sink([&](Packet p) { seen = p.ecn; });
  Packet p = packet_of(0);
  p.ecn = Ecn::kEct0;
  link.send(p);
  sim.run();
  EXPECT_EQ(seen, Ecn::kCe);
  EXPECT_EQ(link.counters().marked, 1);
}

TEST(BottleneckLink, DequeueDropSkipsToNextPacket) {
  Simulator sim;
  BottleneckLink link{sim, config_with(1e6), std::make_unique<DropOddAtDequeue>()};
  std::vector<std::int64_t> seqs;
  link.set_sink([&](Packet p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 6; ++i) {
    Packet p = packet_of(0);
    p.seq = i;
    link.send(p);
  }
  sim.run();
  EXPECT_EQ(seqs, (std::vector<std::int64_t>{0, 2, 4}));
  EXPECT_EQ(link.counters().aqm_dropped, 3);
}

TEST(BottleneckLink, DropProbeDistinguishesReasons) {
  Simulator sim;
  BottleneckLink link{sim, config_with(1e6, 1), std::make_unique<FifoTailDrop>()};
  int tail = 0;
  link.set_drop_probe([&](const Packet&, BottleneckLink::DropReason r) {
    if (r == BottleneckLink::DropReason::kTailDrop) ++tail;
  });
  for (int i = 0; i < 5; ++i) link.send(packet_of(0));
  sim.run();
  EXPECT_EQ(tail, 3);
}

TEST(DelayPipe, DelaysDeliveryByExactAmount) {
  Simulator sim;
  DelayPipe pipe{sim, from_seconds(0.05)};
  Time delivered{};
  pipe.set_sink([&](Packet) { delivered = sim.now(); });
  sim.at(from_seconds(1.0), [&] { pipe.send(Packet{}); });
  sim.run();
  EXPECT_EQ(delivered, from_seconds(1.05));
}

TEST(DelayPipe, PreservesOrderForEqualDelays) {
  Simulator sim;
  DelayPipe pipe{sim, from_seconds(0.01)};
  std::vector<std::int64_t> seqs;
  pipe.set_sink([&](Packet p) { seqs.push_back(p.seq); });
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.seq = i;
    pipe.send(p);
  }
  sim.run();
  EXPECT_EQ(seqs, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace pi2::net
