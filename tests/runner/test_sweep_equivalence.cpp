// Serial-vs-parallel equivalence of the experiment sweep: the fig15 quick
// grid run with --jobs 1 and --jobs 4 must yield identical RunResult
// streams — same order, bitwise-equal statistics — and two parallel
// executions with the same seed must match each other. Run durations are
// shortened via the Options overrides so the full 36-point grid stays
// test-sized; the simulation code paths are exactly the figures'.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sweep.hpp"

namespace pi2::bench {
namespace {

/// Everything observable about one sweep point, compared bitwise. Doubles
/// are compared with exact equality on purpose: parallelism must not
/// perturb a single bit of any statistic.
struct PointDigest {
  scenario::AqmType aqm;
  MixKind mix;
  double link_mbps;
  double rtt_ms;
  std::uint64_t seed;
  double mean_qdelay_ms;
  double p99_qdelay_ms;
  double utilization;
  double signal_rate;
  std::uint64_t events_executed;
  std::uint64_t clamped_events;
  std::int64_t enqueued, forwarded, aqm_dropped, tail_dropped, marked;
  std::vector<double> flow_goodputs;
  std::vector<double> qdelay_series;

  bool operator==(const PointDigest&) const = default;
};

PointDigest digest(const SweepPoint& p) {
  PointDigest d{};
  d.aqm = p.aqm;
  d.mix = p.mix;
  d.link_mbps = p.link_mbps;
  d.rtt_ms = p.rtt_ms;
  d.seed = p.seed;
  d.mean_qdelay_ms = p.result.mean_qdelay_ms;
  d.p99_qdelay_ms = p.result.p99_qdelay_ms;
  d.utilization = p.result.utilization;
  d.signal_rate = p.result.observed_signal_rate();
  d.events_executed = p.result.events_executed;
  d.clamped_events = p.result.clamped_events;
  d.enqueued = p.result.window_counters.enqueued;
  d.forwarded = p.result.window_counters.forwarded;
  d.aqm_dropped = p.result.window_counters.aqm_dropped;
  d.tail_dropped = p.result.window_counters.tail_dropped;
  d.marked = p.result.window_counters.marked;
  for (const auto& f : p.result.flows) d.flow_goodputs.push_back(f.goodput_mbps);
  for (const auto& s : p.result.qdelay_ms_series.points()) {
    d.qdelay_series.push_back(s.value);
  }
  return d;
}

Options test_options(unsigned jobs) {
  Options opts;
  opts.seed = 1;
  opts.jobs = jobs;
  // Quick grid (3x3 links x RTTs, both AQMs, both mixes = 36 points) with
  // shortened runs so the whole sweep stays test-sized.
  opts.duration_s_override = 5.0;
  opts.stats_start_s_override = 2.0;
  return opts;
}

std::vector<PointDigest> sweep_digests(unsigned jobs) {
  std::vector<PointDigest> digests;
  run_sweep(test_options(jobs),
            [&](const SweepPoint& p) { digests.push_back(digest(p)); });
  return digests;
}

TEST(SweepEquivalence, Fig15QuickGridJobs1VersusJobs4) {
  const auto serial = sweep_digests(1);
  const auto parallel = sweep_digests(4);
  ASSERT_EQ(serial.size(), 36u);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "grid point " << i << " diverged";
  }
}

TEST(SweepEquivalence, ParallelRunsAreDeterministic) {
  const auto first = sweep_digests(4);
  const auto second = sweep_digests(4);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "grid point " << i << " diverged";
  }
}

TEST(SweepEquivalence, NoClampedSchedulesAcrossTheGrid) {
  for (const auto& d : sweep_digests(2)) {
    EXPECT_EQ(d.clamped_events, 0u);
  }
}

/// Every artifact file in `dir`, keyed by filename, with its full contents.
std::map<std::string, std::string> artifact_bytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in{entry.path(), std::ios::binary};
    std::ostringstream out;
    out << in.rdbuf();
    files[entry.path().filename().string()] = out.str();
  }
  return files;
}

TEST(SweepEquivalence, TelemetryArtifactsAreByteIdenticalAcrossJobs) {
  const std::string dir1 = ::testing::TempDir() + "pi2_sweep_tel_j1";
  const std::string dir2 = ::testing::TempDir() + "pi2_sweep_tel_j2";
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir2);
  for (const auto& [jobs, dir] : {std::pair{1u, dir1}, std::pair{2u, dir2}}) {
    Options opts = test_options(jobs);
    opts.duration_s_override = 2.0;
    opts.stats_start_s_override = 0.5;
    opts.telemetry_dir = dir;
    run_sweep(opts, [](const SweepPoint& p) {
      EXPECT_FALSE(p.manifest_path.empty());
    });
  }
  const auto first = artifact_bytes(dir1);
  const auto second = artifact_bytes(dir2);
  // 36 points x (jsonl + prom + manifest) + the sweep-level aggregate.
  ASSERT_EQ(first.size(), 36u * 3u + 1u);
  ASSERT_EQ(first.size(), second.size());
  for (const auto& [name, bytes] : first) {
    ASSERT_TRUE(second.contains(name)) << name;
    EXPECT_EQ(bytes, second.at(name)) << name << " diverged across --jobs";
    EXPECT_FALSE(bytes.empty()) << name;
  }
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir2);
}

}  // namespace
}  // namespace pi2::bench
