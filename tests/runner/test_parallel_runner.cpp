#include "runner/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/rng.hpp"

namespace pi2::runner {
namespace {

TEST(ParallelRunner, DefaultsToAtLeastOneJob) {
  EXPECT_GE(ParallelRunner{}.jobs(), 1u);
  EXPECT_EQ(ParallelRunner{3}.jobs(), 3u);
}

TEST(ParallelRunner, ConsumesInSubmissionOrder) {
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    ParallelRunner pool{jobs};
    std::vector<std::size_t> consumed;
    pool.run(
        100, [](std::size_t) {},
        [&](std::size_t i) { consumed.push_back(i); });
    std::vector<std::size_t> expected(100);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(consumed, expected) << "jobs=" << jobs;
  }
}

TEST(ParallelRunner, EveryTaskRunsExactlyOnce) {
  ParallelRunner pool{4};
  std::vector<std::atomic<int>> runs(500);
  pool.run(
      500, [&](std::size_t i) { runs[i].fetch_add(1); }, [](std::size_t) {});
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ParallelRunner, RunOrderedDeliversProducedValues) {
  ParallelRunner pool{4};
  std::vector<std::uint64_t> out;
  pool.run_ordered<std::uint64_t>(
      64, [](std::size_t i) { return static_cast<std::uint64_t>(i * i); },
      [&](std::size_t i, std::uint64_t&& v) {
        EXPECT_EQ(v, i * i);
        out.push_back(v);
      });
  EXPECT_EQ(out.size(), 64u);
}

TEST(ParallelRunner, ParallelResultsMatchSerial) {
  // The determinism contract: same tasks, same per-index seeds -> the
  // consumed stream is identical for any job count.
  auto simulate = [](std::size_t i) {
    sim::Rng rng{sim::Rng::derive_seed(99, i)};
    double acc = 0;
    for (int k = 0; k < 1000; ++k) acc += rng.uniform();
    return acc;
  };
  std::vector<double> serial;
  std::vector<double> parallel;
  ParallelRunner{1}.run_ordered<double>(
      50, simulate, [&](std::size_t, double&& v) { serial.push_back(v); });
  ParallelRunner{4}.run_ordered<double>(
      50, simulate, [&](std::size_t, double&& v) { parallel.push_back(v); });
  EXPECT_EQ(serial, parallel);  // bitwise: no reduction-order effects
}

TEST(ParallelRunner, ZeroTasksIsANoop) {
  ParallelRunner pool{4};
  pool.run(
      0, [](std::size_t) { FAIL(); }, [](std::size_t) { FAIL(); });
}

TEST(ParallelRunner, WorkerExceptionPropagatesToCaller) {
  ParallelRunner pool{4};
  std::atomic<int> consumed{0};
  EXPECT_THROW(
      pool.run(
          32,
          [](std::size_t i) {
            if (i == 7) throw std::runtime_error("boom");
          },
          [&](std::size_t) { ++consumed; }),
      std::runtime_error);
  EXPECT_LE(consumed.load(), 7);  // consumption stops at the failed index
}

TEST(ParallelRunner, AggregateErrorCarriesEveryFailure) {
  // The old behavior dropped all but the first worker exception; the
  // aggregate must name every failed index with its own message.
  for (const unsigned jobs : {1u, 4u}) {
    ParallelRunner pool{jobs};
    try {
      pool.run(
          32,
          [](std::size_t i) {
            if (i == 3 || i == 17 || i == 31) {
              throw std::runtime_error("boom-" + std::to_string(i));
            }
          },
          [](std::size_t) {});
      FAIL() << "expected AggregateError, jobs=" << jobs;
    } catch (const AggregateError& err) {
      ASSERT_EQ(err.failures().size(), 3u) << "jobs=" << jobs;
      EXPECT_EQ(err.failures()[0].index, 3u);
      EXPECT_EQ(err.failures()[1].index, 17u);
      EXPECT_EQ(err.failures()[2].index, 31u);
      EXPECT_EQ(err.failures()[1].message, "boom-17");
      const std::string what = err.what();
      EXPECT_NE(what.find("boom-3"), std::string::npos);
      EXPECT_NE(what.find("boom-17"), std::string::npos);
      EXPECT_NE(what.find("boom-31"), std::string::npos);
    }
  }
}

TEST(ParallelRunner, GuardedRunConsumesEveryIndexInOrder) {
  for (const unsigned jobs : {1u, 4u}) {
    ParallelRunner pool{jobs};
    std::vector<std::size_t> order;
    std::vector<TaskStatus> statuses;
    const RunReport report = pool.run_guarded(
        16,
        [](std::size_t i) {
          if (i % 5 == 0) throw std::runtime_error("bad");
        },
        [&](std::size_t i, TaskStatus status) {
          order.push_back(i);
          statuses.push_back(status);
        },
        GuardOptions{.retry = {.max_attempts = 1}});
    std::vector<std::size_t> expected(16);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected) << "jobs=" << jobs;
    EXPECT_FALSE(report.all_ok());
    EXPECT_EQ(report.failures.size(), 4u);  // 0, 5, 10, 15
    EXPECT_EQ(report.ok_count(), 12u);
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(statuses[i],
                i % 5 == 0 ? TaskStatus::kFailed : TaskStatus::kOk);
      EXPECT_EQ(report.status[i], statuses[i]);
    }
  }
}

TEST(ParallelRunner, GuardedRetryRecoversFlakyTask) {
  for (const unsigned jobs : {1u, 4u}) {
    ParallelRunner pool{jobs};
    std::atomic<int> attempts{0};
    const RunReport report = pool.run_guarded(
        8,
        [&](std::size_t i) {
          if (i == 2 && attempts.fetch_add(1) == 0) {
            throw std::runtime_error("flaky");
          }
        },
        [](std::size_t, TaskStatus) {},
        GuardOptions{.retry = {.max_attempts = 2}});
    EXPECT_TRUE(report.all_ok()) << "jobs=" << jobs;
    attempts = 0;
  }
}

TEST(ParallelRunner, GuardedOrderedDeliversNullForFailedTasks) {
  ParallelRunner pool{4};
  std::vector<bool> got_value;
  const RunReport report = pool.run_ordered_guarded<int>(
      10,
      [](std::size_t i) {
        if (i == 4) throw std::runtime_error("no value");
        return static_cast<int>(i) * 10;
      },
      [&](std::size_t i, TaskStatus status, int* value) {
        got_value.push_back(value != nullptr);
        if (value != nullptr) {
          EXPECT_EQ(status, TaskStatus::kOk);
          EXPECT_EQ(*value, static_cast<int>(i) * 10);
        }
      },
      GuardOptions{.retry = {.max_attempts = 1}});
  ASSERT_EQ(got_value.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(got_value[i], i != 4);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].index, 4u);
  EXPECT_EQ(report.failures[0].message, "no value");
}

TEST(ParallelRunner, WatchdogTimesOutWedgedTaskAndKeepsOrder) {
  // Task 3 sleeps far past the deadline on every attempt: it must be
  // reported kTimeout while every other task completes, still in order.
  ParallelRunner pool{2};
  std::vector<std::size_t> order;
  const RunReport report = pool.run_guarded(
      8,
      [](std::size_t i) {
        if (i == 3) std::this_thread::sleep_for(std::chrono::milliseconds{400});
      },
      [&](std::size_t i, TaskStatus) { order.push_back(i); },
      GuardOptions{.retry = {.max_attempts = 2,
                             .attempt_deadline = std::chrono::milliseconds{50}}});
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].index, 3u);
  EXPECT_EQ(report.failures[0].status, TaskStatus::kTimeout);
  EXPECT_EQ(report.status[3], TaskStatus::kTimeout);
}

TEST(ParallelRunner, CancelledBeforeStartInterruptsEveryTask) {
  for (const unsigned jobs : {1u, 4u}) {
    ParallelRunner pool{jobs};
    std::atomic<bool> cancel{true};
    std::atomic<int> ran{0};
    std::vector<std::size_t> order;
    std::vector<TaskStatus> statuses;
    const RunReport report = pool.run_guarded(
        8, [&](std::size_t) { ++ran; },
        [&](std::size_t i, TaskStatus status) {
          order.push_back(i);
          statuses.push_back(status);
        },
        GuardOptions{.cancel = &cancel});
    EXPECT_EQ(ran.load(), 0) << "no task may start after cancellation";
    std::vector<std::size_t> expected(8);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected) << "interrupted tasks are still consumed";
    for (const TaskStatus s : statuses) {
      EXPECT_EQ(s, TaskStatus::kInterrupted);
    }
    EXPECT_EQ(report.ok_count(), 0u);
    EXPECT_FALSE(report.all_ok());
  }
}

TEST(ParallelRunner, CancelMidRunKeepsFinishedWorkAndInterruptsTheRest) {
  // Serial pool: task 3 raises the flag while running. Work already done
  // (0..3, including the raiser — completed work is never thrown away)
  // stays kOk; everything after goes kInterrupted without running.
  ParallelRunner pool{1};
  std::atomic<bool> cancel{false};
  std::atomic<int> ran{0};
  const RunReport report = pool.run_guarded(
      8,
      [&](std::size_t i) {
        ++ran;
        if (i == 3) cancel.store(true);
      },
      [](std::size_t, TaskStatus) {}, GuardOptions{.cancel = &cancel});
  EXPECT_EQ(ran.load(), 4);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(report.status[i],
              i <= 3 ? TaskStatus::kOk : TaskStatus::kInterrupted)
        << "index " << i;
  }
  EXPECT_EQ(report.ok_count(), 4u);
}

TEST(ParallelRunner, FailedAttemptAfterCancelIsNotRetried) {
  ParallelRunner pool{1};
  std::atomic<bool> cancel{false};
  std::atomic<int> attempts{0};
  const RunReport report = pool.run_guarded(
      1,
      [&](std::size_t) {
        ++attempts;
        cancel.store(true);
        throw std::runtime_error("failed during shutdown");
      },
      [](std::size_t, TaskStatus) {},
      GuardOptions{.retry = {.max_attempts = 5}, .cancel = &cancel});
  EXPECT_EQ(attempts.load(), 1) << "no retries once shutdown is requested";
  EXPECT_FALSE(report.all_ok());
}

TEST(ParallelRunner, BackoffRetryRecoversARepeatedlyFailingTask) {
  // Two failures, then success — within max_attempts = 3, with a real (but
  // tiny) exponential backoff between attempts.
  for (const unsigned jobs : {1u, 4u}) {
    ParallelRunner pool{jobs};
    std::atomic<int> attempts{0};
    const RunReport report = pool.run_guarded(
        4,
        [&](std::size_t i) {
          if (i == 2 && attempts.fetch_add(1) < 2) {
            throw std::runtime_error("flaky twice");
          }
        },
        [](std::size_t, TaskStatus) {},
        GuardOptions{.retry = {.max_attempts = 3,
                               .backoff_base = std::chrono::milliseconds{1},
                               .backoff_multiplier = 2.0,
                               .jitter_fraction = 0.1,
                               .jitter_seed = 7}});
    EXPECT_TRUE(report.all_ok()) << "jobs=" << jobs;
    EXPECT_EQ(attempts.load(), 3) << "jobs=" << jobs;
    attempts = 0;
  }
}

TEST(ParallelRunner, StaleResultFromTimedOutAttemptIsDiscarded) {
  // The first attempt of task 0 outlives its deadline but eventually
  // produces a value; the retry produces another. Exactly one commit must
  // win and the consumer must observe a single coherent value.
  ParallelRunner pool{2};
  std::atomic<int> attempt{0};
  int seen = -1;
  int calls = 0;
  const RunReport report = pool.run_ordered_guarded<int>(
      1,
      [&](std::size_t) {
        const int a = attempt.fetch_add(1);
        if (a == 0) std::this_thread::sleep_for(std::chrono::milliseconds{200});
        return a;
      },
      [&](std::size_t, TaskStatus status, int* value) {
        ++calls;
        EXPECT_EQ(status, TaskStatus::kOk);
        if (value != nullptr) seen = *value;
      },
      GuardOptions{.retry = {.max_attempts = 2,
                             .attempt_deadline = std::chrono::milliseconds{40}}});
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 1);  // the retry's value, not the stale first attempt's
}

}  // namespace
}  // namespace pi2::runner
