#include "runner/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/rng.hpp"

namespace pi2::runner {
namespace {

TEST(ParallelRunner, DefaultsToAtLeastOneJob) {
  EXPECT_GE(ParallelRunner{}.jobs(), 1u);
  EXPECT_EQ(ParallelRunner{3}.jobs(), 3u);
}

TEST(ParallelRunner, ConsumesInSubmissionOrder) {
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    ParallelRunner pool{jobs};
    std::vector<std::size_t> consumed;
    pool.run(
        100, [](std::size_t) {},
        [&](std::size_t i) { consumed.push_back(i); });
    std::vector<std::size_t> expected(100);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(consumed, expected) << "jobs=" << jobs;
  }
}

TEST(ParallelRunner, EveryTaskRunsExactlyOnce) {
  ParallelRunner pool{4};
  std::vector<std::atomic<int>> runs(500);
  pool.run(
      500, [&](std::size_t i) { runs[i].fetch_add(1); }, [](std::size_t) {});
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ParallelRunner, RunOrderedDeliversProducedValues) {
  ParallelRunner pool{4};
  std::vector<std::uint64_t> out;
  pool.run_ordered<std::uint64_t>(
      64, [](std::size_t i) { return static_cast<std::uint64_t>(i * i); },
      [&](std::size_t i, std::uint64_t&& v) {
        EXPECT_EQ(v, i * i);
        out.push_back(v);
      });
  EXPECT_EQ(out.size(), 64u);
}

TEST(ParallelRunner, ParallelResultsMatchSerial) {
  // The determinism contract: same tasks, same per-index seeds -> the
  // consumed stream is identical for any job count.
  auto simulate = [](std::size_t i) {
    sim::Rng rng{sim::Rng::derive_seed(99, i)};
    double acc = 0;
    for (int k = 0; k < 1000; ++k) acc += rng.uniform();
    return acc;
  };
  std::vector<double> serial;
  std::vector<double> parallel;
  ParallelRunner{1}.run_ordered<double>(
      50, simulate, [&](std::size_t, double&& v) { serial.push_back(v); });
  ParallelRunner{4}.run_ordered<double>(
      50, simulate, [&](std::size_t, double&& v) { parallel.push_back(v); });
  EXPECT_EQ(serial, parallel);  // bitwise: no reduction-order effects
}

TEST(ParallelRunner, ZeroTasksIsANoop) {
  ParallelRunner pool{4};
  pool.run(
      0, [](std::size_t) { FAIL(); }, [](std::size_t) { FAIL(); });
}

TEST(ParallelRunner, WorkerExceptionPropagatesToCaller) {
  ParallelRunner pool{4};
  std::atomic<int> consumed{0};
  EXPECT_THROW(
      pool.run(
          32,
          [](std::size_t i) {
            if (i == 7) throw std::runtime_error("boom");
          },
          [&](std::size_t) { ++consumed; }),
      std::runtime_error);
  EXPECT_LE(consumed.load(), 7);  // consumption stops at the failed index
}

}  // namespace
}  // namespace pi2::runner
