#include "telemetry/exporter.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "durable/atomic_file.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pi2::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(PrometheusName, MapsDotsAndDashesToUnderscores) {
  EXPECT_EQ(prometheus_name("link.sojourn_ms"), "pi2_link_sojourn_ms");
  EXPECT_EQ(prometheus_name("aqm.p"), "pi2_aqm_p");
  EXPECT_EQ(prometheus_name("a-b c"), "pi2_a_b_c");
}

TEST(JsonlExporter, WritesOneObjectPerSampleSorted) {
  MetricsRegistry reg;
  reg.gauge("b").set(2.0);
  reg.counter("a").inc(1);
  const std::string path = temp_path("pi2_test_export.jsonl");
  JsonlExporter exporter{path};
  exporter.on_sample(pi2::sim::from_seconds(0.5), reg);
  reg.gauge("b").set(3.0);
  exporter.on_sample(pi2::sim::from_seconds(1.0), reg);
  ASSERT_TRUE(exporter.finish(reg));
  EXPECT_TRUE(exporter.ok());  // a cleanly finished exporter stays ok
  EXPECT_EQ(slurp(path),
            "{\"t_s\": 0.500000000, \"a\": 1, \"b\": 2}\n"
            "{\"t_s\": 1.000000000, \"a\": 1, \"b\": 3}\n");
  std::remove(path.c_str());
}

TEST(CsvExporter, HeaderFromFirstSampleLaterMetricsNotRetrofitted) {
  MetricsRegistry reg;
  reg.gauge("x").set(1.5);
  const std::string path = temp_path("pi2_test_export.csv");
  CsvExporter exporter{path};
  exporter.on_sample(pi2::sim::from_seconds(1.0), reg);
  reg.gauge("a").set(9.0);  // sorts before "x" but joined after the header
  exporter.on_sample(pi2::sim::from_seconds(2.0), reg);
  ASSERT_TRUE(exporter.finish(reg));
  EXPECT_EQ(slurp(path),
            "t_s,x\n"
            "1.000000000,1.5\n"
            "2.000000000,1.5\n");
  std::remove(path.c_str());
}

TEST(PrometheusExporter, EmitsTypedFinalSnapshot) {
  MetricsRegistry reg;
  reg.counter("tx").inc(7);
  reg.gauge("p").set(0.25);
  Histogram& h = reg.histogram("lat", Histogram::Config{1.0, 4.0, 1});
  h.record(1.5);
  h.record(3.0);
  const std::string path = temp_path("pi2_test_export.prom");
  PrometheusExporter exporter{path};
  exporter.on_sample(pi2::sim::from_seconds(1.0), reg);  // no-op by design
  ASSERT_TRUE(exporter.finish(reg));
  const std::string text = slurp(path);
  EXPECT_NE(text.find("# TYPE pi2_tx counter\npi2_tx 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pi2_p gauge\npi2_p 0.25\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pi2_lat histogram\n"), std::string::npos);
  // Cumulative buckets: [1,2) holds 1.5, [2,4) holds 3.0, +Inf total.
  EXPECT_NE(text.find("pi2_lat_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("pi2_lat_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("pi2_lat_sum 4.5\npi2_lat_count 2\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FileExporter, UnwritablePathIsNotOkAndFinishFails) {
  MetricsRegistry reg;
  // /dev/null/... fails with ENOTDIR for any user, including root.
  JsonlExporter exporter{"/dev/null/pi2_test.jsonl"};
  EXPECT_FALSE(exporter.ok());
  exporter.on_sample(pi2::sim::from_seconds(1.0), reg);  // must not crash
  EXPECT_FALSE(exporter.finish(reg));
  EXPECT_EQ(exporter.status().code(), durable::StatusCode::kIoError);
  EXPECT_NE(exporter.status().message().find("/dev/null/pi2_test.jsonl"),
            std::string::npos)
      << "error must name the offending path: " << exporter.status().message();
}

/// Fault-injection tests share the process-global AtomicFile fault plan.
class FileExporterFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { durable::AtomicFile::clear_faults(); }
};

TEST_F(FileExporterFaultTest, DiskFullMidStreamLatchesAndLeavesNoArtifact) {
  MetricsRegistry reg;
  reg.gauge("g").set(1.0);
  const std::string path = temp_path("pi2_test_enospc.jsonl");
  std::remove(path.c_str());
  JsonlExporter exporter{path};
  ASSERT_TRUE(exporter.ok());

  // The disk fills up after the exporter has already streamed one sample.
  exporter.on_sample(pi2::sim::from_seconds(1.0), reg);
  ASSERT_TRUE(exporter.ok());
  durable::AtomicFile::Faults faults;
  faults.fail_write_after_bytes = 0;
  durable::AtomicFile::set_faults(faults);
  exporter.on_sample(pi2::sim::from_seconds(2.0), reg);

  EXPECT_FALSE(exporter.ok()) << "a failed row write must not be silent";
  EXPECT_EQ(exporter.status().code(), durable::StatusCode::kIoError);
  EXPECT_NE(exporter.status().message().find(path), std::string::npos);
  EXPECT_FALSE(exporter.finish(reg)) << "finish must refuse a damaged stream";
  // Half a metric stream is worse than none: no destination file.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(FileExporterFaultTest, FailedCommitLeavesNoTornSnapshot) {
  MetricsRegistry reg;
  reg.counter("tx").inc(3);
  const std::string path = temp_path("pi2_test_commitfail.prom");
  std::remove(path.c_str());
  PrometheusExporter exporter{path};
  ASSERT_TRUE(exporter.ok());
  durable::AtomicFile::Faults faults;
  faults.fail_commit = true;
  durable::AtomicFile::set_faults(faults);
  EXPECT_FALSE(exporter.finish(reg));
  EXPECT_EQ(exporter.status().code(), durable::StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ExportersAreDeterministic, SameRegistrySameBytes) {
  const std::string path_a = temp_path("pi2_test_det_a.jsonl");
  const std::string path_b = temp_path("pi2_test_det_b.jsonl");
  for (const std::string& path : {path_a, path_b}) {
    MetricsRegistry reg;
    reg.gauge("queue.delay_ms").set(17.25);
    reg.counter("link.tx_bytes").inc(123456789);
    reg.histogram("link.sojourn_ms").record(0.125);
    JsonlExporter exporter{path};
    exporter.on_sample(pi2::sim::from_seconds(2.5), reg);
    ASSERT_TRUE(exporter.finish(reg));
  }
  const std::string a = slurp(path_a);
  EXPECT_EQ(a, slurp(path_b));
  EXPECT_FALSE(a.empty());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace pi2::telemetry
