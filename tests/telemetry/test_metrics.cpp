#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pi2::telemetry {
namespace {

TEST(Counter, AccumulatesIncrements) {
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("events"), &c);  // find-or-create returns same node
}

TEST(Gauge, BoundCallbackEvaluatesAtReadTime) {
  MetricsRegistry reg;
  double live = 1.0;
  Gauge& g = reg.gauge("backlog", [&live] { return live; });
  live = 7.0;
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.freeze();
  live = 9.0;
  EXPECT_DOUBLE_EQ(g.value(), 7.0);  // frozen at the last bound read
}

TEST(Gauge, SetOverridesBinding) {
  Gauge g;
  g.bind([] { return 3.0; });
  g.set(5.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(Histogram, CountsMeanMinMax) {
  Histogram h{Histogram::Config{1e-3, 1e3, 8}};
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 3.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 3u);  // NaN ignored
}

TEST(Histogram, BucketEdges) {
  Histogram h{Histogram::Config{1.0, 16.0, 4}};
  // Layout: underflow, 4 octaves x 4 sub-buckets, overflow.
  ASSERT_EQ(h.bucket_count(), 18u);
  h.record(0.5);    // below lowest -> underflow
  h.record(0.0);    // non-positive -> underflow
  h.record(16.0);   // at highest -> overflow
  h.record(100.0);  // above highest -> overflow
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(17), 2u);
  // 1.0 is exactly the first bin's lower edge; 1.25 the second bin's.
  h.record(1.0);
  h.record(1.25);
  EXPECT_EQ(h.bucket_value(1), 1u);
  EXPECT_EQ(h.bucket_value(2), 1u);
  // First bucket of the second octave covers [2, 2.5).
  h.record(2.0);
  h.record(2.49);
  EXPECT_EQ(h.bucket_value(5), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper_bound(1), 1.25);
  EXPECT_DOUBLE_EQ(h.bucket_upper_bound(4), 2.0);
}

TEST(Histogram, QuantilesBracketThePopulation) {
  Histogram h{Histogram::Config{1e-3, 1e5, 8}};
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i) / 10.0);
  // Log-linear bins resolve to ~1/8 octave: allow that relative error.
  EXPECT_NEAR(h.quantile(0.5), 50.0, 50.0 * 0.15);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 99.0 * 0.15);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min_value());
  EXPECT_DOUBLE_EQ(Histogram{}.quantile(0.5), 0.0);  // empty -> 0
}

TEST(Histogram, MergeAddsPopulations) {
  const Histogram::Config cfg{1e-3, 1e3, 8};
  Histogram a{cfg};
  Histogram b{cfg};
  a.record(1.0);
  b.record(100.0);
  b.record(0.5);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min_value(), 0.5);
  EXPECT_DOUBLE_EQ(a.max_value(), 100.0);
  EXPECT_DOUBLE_EQ(a.sum(), 101.5);
}

TEST(Histogram, MergeRejectsMismatchedLayouts) {
  Histogram a{Histogram::Config{1e-3, 1e3, 8}};
  Histogram b{Histogram::Config{1e-3, 1e6, 8}};
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(Histogram, RejectsInvalidConfig) {
  EXPECT_THROW(Histogram(Histogram::Config{0.0, 1.0, 8}), std::invalid_argument);
  EXPECT_THROW(Histogram(Histogram::Config{2.0, 1.0, 8}), std::invalid_argument);
  EXPECT_THROW(Histogram(Histogram::Config{1.0, 2.0, 0}), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotIsSortedAndExpandsHistograms) {
  MetricsRegistry reg;
  reg.counter("z.count").inc(3);
  reg.gauge("a.gauge").set(1.5);
  reg.histogram("m.hist").record(2.0);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 8u);  // 1 counter + 1 gauge + 6 histogram rows
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
  EXPECT_EQ(snap.front().first, "a.gauge");
  EXPECT_EQ(snap.back().first, "z.count");
}

TEST(MetricsRegistry, SnapshotViewTracksNewMetricsAndNewValues) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  const auto& first = reg.snapshot_view();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(first[0].second, 0.0);
  c.inc(5);
  EXPECT_DOUBLE_EQ(reg.snapshot_view()[0].second, 5.0);  // values refresh
  const auto version = reg.layout_version();
  reg.gauge("b").set(2.0);
  EXPECT_GT(reg.layout_version(), version);
  const auto& grown = reg.snapshot_view();
  ASSERT_EQ(grown.size(), 2u);
  EXPECT_EQ(grown[0].first, "b");  // still sorted after the rebuild
  EXPECT_EQ(grown[1].first, "c");
}

TEST(MetricsRegistry, MergeSumsCountersAndCopiesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("n").inc(1);
  b.counter("n").inc(2);
  b.gauge("g").set(4.0);
  b.histogram("h").record(1.0);
  a.merge_from(b);
  EXPECT_EQ(a.counter("n").value(), 3u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 4.0);
  EXPECT_EQ(a.histogram("h").count(), 1u);
}

}  // namespace
}  // namespace pi2::telemetry
