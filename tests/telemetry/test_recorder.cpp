#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "durable/atomic_file.hpp"
#include "scenario/dumbbell.hpp"
#include "telemetry/run_manifest.hpp"

namespace pi2::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

scenario::DumbbellConfig small_config() {
  scenario::DumbbellConfig cfg;
  cfg.link_rate_bps = 10e6;
  cfg.duration = pi2::sim::from_seconds(2.0);
  cfg.stats_start = pi2::sim::from_seconds(0.5);
  cfg.seed = 7;
  scenario::TcpFlowSpec flows;
  flows.count = 2;
  flows.base_rtt = pi2::sim::from_millis(20);
  cfg.tcp_flows.push_back(flows);
  return cfg;
}

/// Runs the same scenario into `dir` and returns the recorder's artifacts.
struct Artifacts {
  std::string manifest;
  std::string jsonl;
  std::string prom;
  bool ok = false;
};

Artifacts run_recorded(const std::string& dir) {
  RecorderConfig rc;
  rc.dir = dir;
  rc.run_id = "det";
  Recorder recorder{rc};
  scenario::DumbbellConfig cfg = small_config();
  cfg.recorder = &recorder;
  scenario::run_dumbbell(cfg);
  Artifacts a;
  a.ok = recorder.ok();
  a.manifest = slurp(recorder.manifest_path());
  a.jsonl = slurp(recorder.jsonl_path());
  a.prom = slurp(recorder.prometheus_path());
  return a;
}

TEST(Recorder, SameConfigAndSeedProduceIdenticalArtifacts) {
  const Artifacts a = run_recorded(::testing::TempDir() + "pi2_rec_a");
  const Artifacts b = run_recorded(::testing::TempDir() + "pi2_rec_b");
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_FALSE(a.manifest.empty());
  EXPECT_FALSE(a.jsonl.empty());
  EXPECT_FALSE(a.prom.empty());
  EXPECT_EQ(a.manifest, b.manifest);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.prom, b.prom);
}

TEST(Recorder, ManifestRecordsConfigSeedAndFinalMetrics) {
  const Artifacts a = run_recorded(::testing::TempDir() + "pi2_rec_m");
  EXPECT_NE(a.manifest.find("\"run_id\": \"det\""), std::string::npos);
  EXPECT_NE(a.manifest.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(a.manifest.find("\"fault_digest\""), std::string::npos);
  EXPECT_NE(a.manifest.find("\"build_flags\""), std::string::npos);
  EXPECT_NE(a.manifest.find("link_rate_bps"), std::string::npos);
  EXPECT_NE(a.manifest.find("aqm.type"), std::string::npos);
  EXPECT_NE(a.manifest.find("queue.delay_ms"), std::string::npos);
}

TEST(Recorder, UnwritableDirectoryReportsNotOk) {
  RecorderConfig rc;
  // A path under /dev/null fails with ENOTDIR for any user (tests may run
  // as root, so a merely missing directory would get created).
  rc.dir = "/dev/null/pi2_rec";
  rc.run_id = "bad";
  Recorder recorder{rc};
  EXPECT_FALSE(recorder.ok());
  EXPECT_FALSE(recorder.finish(pi2::sim::from_seconds(1.0)));
  EXPECT_FALSE(recorder.ok());  // finish() caches the failure
  EXPECT_EQ(recorder.status().code(), durable::StatusCode::kIoError);
  EXPECT_NE(recorder.status().message().find("/dev/null/pi2_rec"),
            std::string::npos)
      << "error must name the offending path: " << recorder.status().message();
}

TEST(Recorder, DiskFullAtFinishSurfacesTheFirstError) {
  const std::string dir = ::testing::TempDir() + "pi2_rec_enospc";
  std::filesystem::remove_all(dir);
  RecorderConfig rc;
  rc.dir = dir;
  rc.run_id = "full";
  Recorder recorder{rc};
  ASSERT_TRUE(recorder.ok());
  recorder.registry().gauge("g").set(1.0);

  durable::AtomicFile::Faults faults;
  faults.fail_write_after_bytes = 0;  // the disk fills before finish()
  durable::AtomicFile::set_faults(faults);
  const bool finished = recorder.finish(pi2::sim::from_seconds(1.0));
  durable::AtomicFile::clear_faults();

  EXPECT_FALSE(finished);
  EXPECT_FALSE(recorder.ok());
  EXPECT_EQ(recorder.status().code(), durable::StatusCode::kIoError);
  EXPECT_NE(recorder.status().message().find(dir), std::string::npos);
  // No torn artifacts: every destination is absent, not half-written.
  EXPECT_FALSE(std::filesystem::exists(recorder.jsonl_path()));
  EXPECT_FALSE(std::filesystem::exists(recorder.prometheus_path()));
  EXPECT_FALSE(std::filesystem::exists(recorder.manifest_path()));
  std::filesystem::remove_all(dir);
}

TEST(RunManifest, WriteJsonToUnwritableDirReportsPathAndErrno) {
  RunManifest manifest;
  manifest.run_id = "m";
  const durable::Status status =
      manifest.write_json("/dev/null/pi2_manifest.json");
  EXPECT_EQ(status.code(), durable::StatusCode::kIoError);
  EXPECT_NE(status.message().find("/dev/null/pi2_manifest.json"),
            std::string::npos);
  EXPECT_NE(status.message().find("errno"), std::string::npos)
      << "message must carry the OS error: " << status.message();
}

TEST(RunManifest, FailedWriteLeavesNeitherDestinationNorTmp) {
  const std::string path =
      ::testing::TempDir() + "pi2_manifest_commitfail.json";
  std::filesystem::remove(path);
  RunManifest manifest;
  manifest.run_id = "m";
  durable::AtomicFile::Faults faults;
  faults.fail_commit = true;
  durable::AtomicFile::set_faults(faults);
  const durable::Status status = manifest.write_json(path);
  durable::AtomicFile::clear_faults();
  EXPECT_EQ(status.code(), durable::StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Recorder, BareRegistryCollectsProbesWithoutArtifacts) {
  MetricsRegistry registry;
  scenario::DumbbellConfig cfg = small_config();
  cfg.registry = &registry;
  scenario::run_dumbbell(cfg);
  // Probes recorded into the registry; gauges were frozen at run end so
  // reading them after the simulation objects are gone is safe.
  EXPECT_GT(registry.histogram("link.sojourn_ms").count(), 0u);
  EXPECT_GT(registry.counter("link.tx_bytes").value(), 0u);
  EXPECT_GT(registry.gauge("link.forwarded").value(), 0.0);
}

TEST(Sampler, FinalSampleAtRunEndIsDeduplicated) {
  MetricsRegistry reg;
  reg.gauge("g").set(1.0);
  Sampler sampler{reg, pi2::sim::from_millis(100)};
  sampler.sample_at(pi2::sim::from_seconds(1.0));
  sampler.sample_at(pi2::sim::from_seconds(1.0));  // same instant: skipped
  EXPECT_EQ(sampler.samples_taken(), 1u);
  sampler.sample_at(pi2::sim::from_seconds(2.0));
  EXPECT_EQ(sampler.samples_taken(), 2u);
  EXPECT_EQ(sampler.series().at("g").size(), 2u);
}

TEST(Sampler, SampleFinalResamplesATickBoundaryEnd) {
  // When the run ends exactly on a periodic tick the tick may have run
  // before the last same-timestamp events; the forced end-of-run sample must
  // capture the post-event values anyway.
  MetricsRegistry reg;
  reg.gauge("g").set(1.0);
  Sampler sampler{reg, pi2::sim::from_millis(100)};
  sampler.sample_at(pi2::sim::from_seconds(2.0));  // the colliding tick
  reg.gauge("g").set(5.0);  // a same-timestamp event updates the metric
  sampler.sample_final(pi2::sim::from_seconds(2.0));
  EXPECT_EQ(sampler.samples_taken(), 2u);
  const auto& series = sampler.series().at("g");
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.points().back().value, 5.0);
}

}  // namespace
}  // namespace pi2::telemetry
