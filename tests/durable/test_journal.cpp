// Run journal: every record that load_journal() hands back must be exactly
// what was appended — torn or corrupted lines are dropped (the point re-runs)
// and a journal from a different campaign is refused wholesale.
#include "durable/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "durable/atomic_file.hpp"

namespace pi2::durable {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kCampaign = 0xfeedfacecafebeefull;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "pi2_journal_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(JournalRecord, EncodeParseRoundtrip) {
  JournalRecord record;
  record.kind = "point";
  record.key = 0x0123456789abcdefull;
  record.payload = "tokens with \"quotes\"\nnewlines\tand \\ backslashes \x01";
  const std::string line = encode_record(record);
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line.find('\n'), line.size() - 1) << "record must be one line";

  JournalRecord parsed;
  ASSERT_TRUE(parse_record(line, parsed).ok());
  EXPECT_EQ(parsed.kind, record.kind);
  EXPECT_EQ(parsed.key, record.key);
  EXPECT_EQ(parsed.payload, record.payload);
}

TEST(JournalRecord, CrcMismatchIsCorrupt) {
  JournalRecord record;
  record.kind = "point";
  record.key = 7;
  record.payload = "payload";
  std::string line = encode_record(record);
  const auto pos = line.find("payload");
  line[pos] = 'q';  // flip one payload byte; crc no longer matches
  JournalRecord parsed;
  const Status status = parse_record(line, parsed);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
}

TEST(JournalRecord, StructuralDamageIsCorrupt) {
  JournalRecord parsed;
  EXPECT_EQ(parse_record("", parsed).code(), StatusCode::kCorrupt);
  EXPECT_EQ(parse_record("{\"kind\":\"point\"}", parsed).code(),
            StatusCode::kCorrupt);
  EXPECT_EQ(parse_record("not json at all", parsed).code(),
            StatusCode::kCorrupt);
}

TEST(Journal, WriteThenLoadRoundtrip) {
  const std::string path = temp_path("roundtrip.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, /*keep_existing=*/false};
    ASSERT_TRUE(writer.healthy());
    EXPECT_TRUE(writer.append_point(1, "alpha").ok());
    EXPECT_TRUE(writer.append_point(2, "beta").ok());
  }
  const LoadedJournal loaded = load_journal(path, kCampaign);
  EXPECT_TRUE(loaded.exists);
  EXPECT_TRUE(loaded.header_ok);
  EXPECT_EQ(loaded.header_key, kCampaign);
  EXPECT_EQ(loaded.dropped, 0u);
  ASSERT_EQ(loaded.points.size(), 2u);
  EXPECT_EQ(loaded.points.at(1), "alpha");
  EXPECT_EQ(loaded.points.at(2), "beta");
  EXPECT_TRUE(loaded.has(1));
  EXPECT_FALSE(loaded.has(3));
  fs::remove(path);
}

TEST(Journal, MissingFileLoadsEmpty) {
  const LoadedJournal loaded = load_journal(temp_path("nope.jsonl"), kCampaign);
  EXPECT_FALSE(loaded.exists);
  EXPECT_FALSE(loaded.header_ok);
  EXPECT_TRUE(loaded.points.empty());
}

TEST(Journal, ForeignCampaignIsRefused) {
  const std::string path = temp_path("foreign.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    EXPECT_TRUE(writer.append_point(1, "alpha").ok());
  }
  const LoadedJournal loaded = load_journal(path, kCampaign + 1);
  EXPECT_TRUE(loaded.exists);
  EXPECT_FALSE(loaded.header_ok);
  EXPECT_EQ(loaded.header_key, kCampaign);
  EXPECT_TRUE(loaded.points.empty()) << "stale points must never leak";
  fs::remove(path);
}

TEST(Journal, TornFinalLineIsDroppedNotReused) {
  const std::string path = temp_path("torn.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    EXPECT_TRUE(writer.append_point(1, "complete-point").ok());
    EXPECT_TRUE(writer.append_point(2, "about-to-be-torn").ok());
  }
  // SIGKILL mid-append: truncate the file inside the last record.
  std::string bytes = slurp(path);
  bytes.resize(bytes.size() - 25);
  { std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes; }

  const LoadedJournal loaded = load_journal(path, kCampaign);
  EXPECT_TRUE(loaded.header_ok);
  EXPECT_EQ(loaded.dropped, 1u) << "the torn record is counted, not reused";
  ASSERT_EQ(loaded.points.size(), 1u);
  EXPECT_EQ(loaded.points.at(1), "complete-point");
  EXPECT_FALSE(loaded.has(2)) << "point 2 must re-run";
  fs::remove(path);
}

TEST(Journal, RecordsAfterAGarbageLineAreStillRecovered) {
  const std::string path = temp_path("midgarbage.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    EXPECT_TRUE(writer.append_point(1, "before").ok());
  }
  { std::ofstream(path, std::ios::app) << "garbage interlude\n"; }
  {
    JournalWriter writer{path, kCampaign, /*keep_existing=*/true};
    EXPECT_TRUE(writer.append_point(2, "after").ok());
  }
  const LoadedJournal loaded = load_journal(path, kCampaign);
  EXPECT_EQ(loaded.dropped, 1u);
  EXPECT_EQ(loaded.points.size(), 2u);
  EXPECT_EQ(loaded.points.at(2), "after");
  fs::remove(path);
}

TEST(Journal, KeepExistingAppendsWithoutTruncating) {
  const std::string path = temp_path("keep.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    EXPECT_TRUE(writer.append_point(1, "first-run").ok());
  }
  {
    JournalWriter writer{path, kCampaign, /*keep_existing=*/true};
    EXPECT_TRUE(writer.append_point(2, "resumed-run").ok());
  }
  const LoadedJournal loaded = load_journal(path, kCampaign);
  EXPECT_TRUE(loaded.header_ok) << "keep_existing must not write a 2nd header";
  EXPECT_EQ(loaded.points.size(), 2u);
  fs::remove(path);
}

TEST(Journal, FreshWriterTruncatesAForeignJournal) {
  const std::string path = temp_path("truncate.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    EXPECT_TRUE(writer.append_point(1, "old").ok());
  }
  { JournalWriter writer{path, kCampaign + 1, false}; }
  const LoadedJournal loaded = load_journal(path, kCampaign + 1);
  EXPECT_TRUE(loaded.header_ok);
  EXPECT_TRUE(loaded.points.empty());
  fs::remove(path);
}

TEST(Journal, InterruptedMarkerIsSurfaced) {
  const std::string path = temp_path("interrupted.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    EXPECT_TRUE(writer.append_point(1, "done").ok());
    EXPECT_TRUE(writer.append_interrupted("signal 15").ok());
  }
  const LoadedJournal loaded = load_journal(path, kCampaign);
  EXPECT_EQ(loaded.interrupted, 1u);
  EXPECT_EQ(loaded.points.size(), 1u);
  fs::remove(path);
}

TEST(Journal, LastRecordWinsForDuplicateKeys) {
  const std::string path = temp_path("dupes.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    EXPECT_TRUE(writer.append_point(1, "first").ok());
    EXPECT_TRUE(writer.append_point(1, "second").ok());
  }
  const LoadedJournal loaded = load_journal(path, kCampaign);
  EXPECT_EQ(loaded.points.at(1), "second");
  fs::remove(path);
}

TEST(Journal, InjectedDiskFullLatchesIoError) {
  const std::string path = temp_path("enospc.jsonl");
  fs::remove(path);
  JournalWriter writer{path, kCampaign, false};
  ASSERT_TRUE(writer.healthy());
  AtomicFile::Faults faults;
  faults.fail_write_after_bytes = 0;  // every further durable write fails
  AtomicFile::set_faults(faults);
  const Status status = writer.append_point(1, "doomed");
  AtomicFile::clear_faults();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(writer.healthy());
  EXPECT_NE(writer.status().message().find(path), std::string::npos);
  fs::remove(path);
}

TEST(ShardInfoCodec, EncodeParseRoundtrip) {
  ShardInfo shard;
  shard.present = true;
  shard.campaign = "fig15 with spaces=and&punct";
  shard.index = 2;
  shard.count = 3;
  shard.lo = 12;
  shard.hi = 24;
  ShardInfo parsed;
  ASSERT_TRUE(parse_shard_info(encode_shard_info(shard), parsed));
  EXPECT_TRUE(parsed.present);
  EXPECT_EQ(parsed.campaign, shard.campaign);
  EXPECT_EQ(parsed.index, 2u);
  EXPECT_EQ(parsed.count, 3u);
  EXPECT_EQ(parsed.lo, 12u);
  EXPECT_EQ(parsed.hi, 24u);
}

TEST(ShardInfoCodec, MalformedPayloadsAreRejected) {
  ShardInfo parsed;
  EXPECT_FALSE(parse_shard_info("", parsed));
  EXPECT_FALSE(parse_shard_info("shard=2/3", parsed));
  EXPECT_FALSE(parse_shard_info("shard=0/3 range=0..4 name=x", parsed))
      << "shards are 1-based";
  EXPECT_FALSE(parse_shard_info("shard=4/3 range=0..4 name=x", parsed));
  EXPECT_FALSE(parse_shard_info("shard=1/1 range=9..4 name=x", parsed))
      << "inverted range";
  EXPECT_FALSE(parse_shard_info("range=0..4 shard=1/1 name=x", parsed))
      << "field order is part of the wire format";
}

TEST(Journal, ShardRecordSurvivesTheLenientLoader) {
  const std::string path = temp_path("shardrec.jsonl");
  fs::remove(path);
  ShardInfo shard;
  shard.present = true;
  shard.campaign = "fig15";
  shard.digest = kCampaign;
  shard.index = 2;
  shard.count = 3;
  shard.lo = 4;
  shard.hi = 8;
  {
    JournalWriter writer{path, kCampaign, false};
    ASSERT_TRUE(writer.append_shard(shard).ok());
    ASSERT_TRUE(writer.append_point(5, "p5").ok());
  }
  const LoadedJournal loaded = load_journal(path, kCampaign);
  EXPECT_TRUE(loaded.header_ok);
  ASSERT_TRUE(loaded.shard.present);
  EXPECT_EQ(loaded.shard.campaign, "fig15");
  EXPECT_EQ(loaded.shard.digest, kCampaign) << "record key carries the digest";
  EXPECT_EQ(loaded.shard.lo, 4u);
  EXPECT_EQ(loaded.shard.hi, 8u);
  EXPECT_EQ(loaded.points.size(), 1u) << "shard record is not a point";
  fs::remove(path);
}

TEST(ShardJournal, StrictLoadRecoversRecordsInFileOrder) {
  const std::string path = temp_path("strict.jsonl");
  fs::remove(path);
  ShardInfo shard;
  shard.present = true;
  shard.campaign = "fig15";
  shard.digest = kCampaign;
  {
    JournalWriter writer{path, kCampaign, false};
    ASSERT_TRUE(writer.append_shard(shard).ok());
    ASSERT_TRUE(writer.append_point(9, "late-index-first").ok());
    ASSERT_TRUE(writer.append_point(2, "early-index-second").ok());
    ASSERT_TRUE(writer.append_point(9, "re-append").ok());
    ASSERT_TRUE(writer.append_interrupted("signal 15").ok());
  }
  ShardJournalData data;
  ASSERT_TRUE(load_shard_journal(path, data).ok());
  EXPECT_TRUE(data.header_seen);
  EXPECT_EQ(data.header_key, kCampaign);
  EXPECT_TRUE(data.shard.present);
  EXPECT_EQ(data.interrupted, 1u);
  // File order with duplicates preserved — the merge needs to see both
  // appends of key 9 to prove they are byte-identical.
  ASSERT_EQ(data.points.size(), 3u);
  EXPECT_EQ(data.points[0].first, 9u);
  EXPECT_EQ(data.points[1].first, 2u);
  EXPECT_EQ(data.points[2].second, "re-append");
  fs::remove(path);
}

TEST(ShardJournal, MissingFileIsIoError) {
  ShardJournalData data;
  EXPECT_EQ(load_shard_journal(temp_path("absent.jsonl"), data).code(),
            StatusCode::kIoError);
}

TEST(ShardJournal, EmptyFileIsCorrupt) {
  const std::string path = temp_path("empty.jsonl");
  { std::ofstream(path, std::ios::trunc); }
  ShardJournalData data;
  const Status status = load_shard_journal(path, data);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_NE(status.message().find("no header record"), std::string::npos);
  fs::remove(path);
}

TEST(ShardJournal, TornTailIsCorruptWithLineNumber) {
  const std::string path = temp_path("stricttorn.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    ASSERT_TRUE(writer.append_point(1, "whole").ok());
    ASSERT_TRUE(writer.append_point(2, "torn-soon").ok());
  }
  std::string bytes = slurp(path);
  bytes.resize(bytes.size() - 15);
  { std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes; }
  ShardJournalData data;
  const Status status = load_shard_journal(path, data);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_NE(status.message().find("line 3"), std::string::npos);
  EXPECT_NE(status.message().find("torn record"), std::string::npos);
  fs::remove(path);
}

TEST(ShardJournal, CrcMismatchIsDistinguishedFromTorn) {
  const std::string path = temp_path("strictrot.jsonl");
  fs::remove(path);
  {
    JournalWriter writer{path, kCampaign, false};
    ASSERT_TRUE(writer.append_point(1, "bitrot-victim").ok());
  }
  std::string bytes = slurp(path);
  // Flip a byte of the payload *value* ("payload" alone would match the
  // field name in the header line and break the record structurally).
  const auto pos = bytes.find("bitrot-victim");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 'q';
  { std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes; }
  ShardJournalData data;
  const Status status = load_shard_journal(path, data);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_NE(status.message().find("crc mismatch"), std::string::npos);
  EXPECT_EQ(status.message().find("torn record"), std::string::npos);
  fs::remove(path);
}

TEST(ShardJournal, HeaderMustComeFirst) {
  const std::string path = temp_path("strictnohdr.jsonl");
  JournalRecord point;
  point.kind = "point";
  point.key = 1;
  point.payload = "x";
  { std::ofstream(path, std::ios::trunc) << encode_record(point); }
  ShardJournalData data;
  const Status status = load_shard_journal(path, data);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_NE(status.message().find("expected the campaign header"),
            std::string::npos);
  fs::remove(path);
}

TEST(ShardJournal, SecondShardRecordIsCorrupt) {
  const std::string path = temp_path("strictdupshard.jsonl");
  fs::remove(path);
  ShardInfo shard;
  shard.present = true;
  shard.campaign = "x";
  shard.digest = kCampaign;
  {
    JournalWriter writer{path, kCampaign, false};
    ASSERT_TRUE(writer.append_shard(shard).ok());
    ASSERT_TRUE(writer.append_shard(shard).ok());
  }
  ShardJournalData data;
  const Status status = load_shard_journal(path, data);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_NE(status.message().find("second shard record"), std::string::npos);
  fs::remove(path);
}

TEST(ShardJournal, UnknownRecordKindIsCorrupt) {
  const std::string path = temp_path("strictkind.jsonl");
  JournalRecord header;
  header.kind = "header";
  header.key = kCampaign;
  JournalRecord alien;
  alien.kind = "telemetry";
  alien.key = 2;
  alien.payload = "x";
  {
    std::ofstream out(path, std::ios::trunc);
    out << encode_record(header) << encode_record(alien);
  }
  ShardJournalData data;
  const Status status = load_shard_journal(path, data);
  EXPECT_EQ(status.code(), StatusCode::kCorrupt);
  EXPECT_NE(status.message().find("unknown record kind 'telemetry'"),
            std::string::npos);
  fs::remove(path);
}

TEST(Journal, UnwritablePathReportsIoError) {
  JournalWriter writer{"/dev/null/nope/run.journal", kCampaign, false};
  EXPECT_FALSE(writer.healthy());
  EXPECT_EQ(writer.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(writer.append_point(1, "x").ok());
}

}  // namespace
}  // namespace pi2::durable
