#!/usr/bin/env bash
# Kill-and-resume regression: a sweep killed mid-run (SIGKILL, then SIGTERM)
# must leave no torn artifact, and re-running with --resume must produce a
# --json byte-identical to an uninterrupted reference run — at a different
# --jobs count, so the journal (not scheduling luck) carries the result.
#
# Usage: resume_kill.sh <sweep-binary> <workdir>
set -euo pipefail

fig="$1"
work="$2"

rm -rf "$work"
mkdir -p "$work"
cd "$work"

fail() { echo "FAIL: $*" >&2; exit 1; }

journal_points() {
  # Completed-point records journaled so far (0 when the file doesn't exist).
  local n
  n=$(grep -c '"kind":"point"' "$1" 2>/dev/null) || n=0
  echo "${n:-0}"
}

# Launches a victim sweep in the background, waits for >=3 journaled points,
# then delivers $1. Sets outcome="killed" if the signal landed while the
# sweep was still running ("finished" if the sweep won the race) and
# last_exit to the victim's exit status. One injected point stalls for 30 s
# so the victim is reliably mid-run when the signal arrives (a smoke sweep
# finishes in well under a second otherwise); the hang hook changes neither
# the campaign key nor any completed point's bytes.
outcome=""
last_exit=0
run_and_signal() {
  local signal="$1" json="$2" journal="$3"
  rm -f "$json" "$journal"
  "$fig" --smoke --seed 1 --jobs 2 --json "$json" --journal "$journal" \
    --telemetry tele --inject-hang 6 --hang-s 30 \
    >/dev/null 2>&1 &
  local pid=$!
  for _ in $(seq 1 600); do
    [ "$(journal_points "$journal")" -ge 3 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.05
  done
  if kill "-$signal" "$pid" 2>/dev/null; then
    outcome=killed
  else
    outcome=finished
  fi
  set +e
  wait "$pid"
  last_exit=$?
  set -e
}

# Reference: one uninterrupted run. All runs share the `tele` telemetry dir
# so the manifest paths embedded in the JSON records are comparable (and the
# artifacts themselves are deterministic, so overwrites are byte-identical).
"$fig" --smoke --seed 1 --jobs 2 --json ref.json --journal ref.journal \
  --telemetry tele >/dev/null
[ -s ref.json ] || fail "reference run produced no ref.json"

# --- Phase A: SIGKILL mid-sweep ---------------------------------------------
run_and_signal KILL a.json a.journal
if [ "$outcome" = killed ]; then
  [ ! -e a.json ] || fail "torn a.json left behind after SIGKILL"
  [ "$(journal_points a.journal)" -ge 1 ] || fail "no journaled points to resume"
else
  echo "WARN: sweep finished before SIGKILL; resume degenerates to full replay" >&2
fi
"$fig" --smoke --seed 1 --jobs 4 --json a.json --journal a.journal \
  --telemetry tele --resume >/dev/null
cmp ref.json a.json || fail "resumed JSON differs from the reference (SIGKILL)"

# --- Phase B: SIGTERM (graceful shutdown) -----------------------------------
run_and_signal TERM b.json b.journal
if [ "$outcome" = killed ]; then
  [ "$last_exit" -eq 75 ] || fail "SIGTERM exit code $last_exit, expected 75"
  [ ! -e b.json ] || fail "torn b.json left behind after SIGTERM"
  grep -q '"kind":"interrupted"' b.journal \
    || fail "graceful shutdown did not journal the interrupted marker"
else
  echo "WARN: sweep finished before SIGTERM; exit-code check skipped" >&2
fi
"$fig" --smoke --seed 1 --jobs 1 --json b.json --journal b.journal \
  --telemetry tele --resume >/dev/null
cmp ref.json b.json || fail "resumed JSON differs from the reference (SIGTERM)"

# No half-written artifact may survive anywhere in the work tree.
tmp_files=$(find . -name '*.tmp' | wc -l)
[ "$tmp_files" -eq 0 ] || fail "$tmp_files leftover .tmp artifact(s)"

echo "resume-kill ok"
