// ShutdownController + the safe-boundary stop chain: flag -> simulator stop
// -> run_dumbbell unwinds with InterruptedError, telemetry artifacts
// committed and marked interrupted.
//
// Signal delivery itself (SIGTERM mid-sweep) is covered end to end by the
// resume_kill.sh ctest; here the flag is raised programmatically so the test
// stays in-process and deterministic.
#include "durable/shutdown.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "durable/status.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "telemetry/recorder.hpp"

namespace pi2::durable {
namespace {

namespace fs = std::filesystem;

/// The controller is process-global; every test leaves it clean.
class ShutdownTest : public ::testing::Test {
 protected:
  void SetUp() override { ShutdownController::reset(); }
  void TearDown() override { ShutdownController::reset(); }
};

TEST_F(ShutdownTest, RequestSetsFlagAndSignal) {
  EXPECT_FALSE(ShutdownController::requested());
  EXPECT_EQ(ShutdownController::signal_number(), 0);
  ShutdownController::request(SIGTERM);
  EXPECT_TRUE(ShutdownController::requested());
  EXPECT_EQ(ShutdownController::signal_number(), SIGTERM);
  EXPECT_TRUE(ShutdownController::flag()->load());
}

TEST_F(ShutdownTest, InstallIsIdempotent) {
  ShutdownController::install();
  ShutdownController::install();  // second call is a no-op, not a crash
  EXPECT_FALSE(ShutdownController::requested());
}

TEST_F(ShutdownTest, ExitCodeIsExTempfail) {
  EXPECT_EQ(ShutdownController::kExitInterrupted, 75);
}

TEST_F(ShutdownTest, SimulatorStopsAtEventBoundary) {
  sim::Simulator sim;
  std::atomic<bool> stop{false};
  sim.set_stop_flag(&stop);
  // Self-rescheduling event chain: would run forever without the stop flag.
  std::uint64_t executed = 0;
  std::function<void()> tick = [&] {
    ++executed;
    if (executed == 100) stop.store(true, std::memory_order_release);
    sim.after(sim::from_millis(1), tick);
  };
  sim.after(sim::from_millis(1), tick);
  sim.run_until(sim::from_seconds(3600));
  EXPECT_TRUE(sim.stopped());
  EXPECT_GE(executed, 100u);
  // The poll interval is 1024 events; the run must end well before the hour
  // of simulated time it was asked for.
  EXPECT_LT(executed, 100u + 2048u);
}

TEST_F(ShutdownTest, RunDumbbellThrowsInterruptedAndMarksManifest) {
  const std::string dir =
      std::string(::testing::TempDir()) + "pi2_shutdown_run";
  fs::remove_all(dir);

  std::atomic<bool> stop{true};  // stop immediately: first poll sees it
  telemetry::Recorder recorder{[&] {
    telemetry::RecorderConfig rc;
    rc.dir = dir;
    rc.run_id = "interrupted_run";
    return rc;
  }()};

  scenario::DumbbellConfig cfg;
  cfg.duration = sim::from_seconds(2.0);
  cfg.stats_start = sim::from_seconds(0.5);
  scenario::TcpFlowSpec flow;
  flow.cc = tcp::CcType::kCubic;
  flow.count = 1;
  flow.base_rtt = sim::from_millis(10);
  cfg.tcp_flows.push_back(flow);
  cfg.stop = &stop;
  cfg.recorder = &recorder;

  EXPECT_THROW(scenario::run_dumbbell(cfg), InterruptedError);

  // The artifacts were still committed (no torn tmp files) and the manifest
  // records the interruption.
  const std::string manifest_path = dir + "/interrupted_run.manifest.json";
  ASSERT_TRUE(fs::exists(manifest_path));
  EXPECT_FALSE(fs::exists(manifest_path + ".tmp"));
  std::ifstream in(manifest_path);
  const std::string manifest{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_NE(manifest.find("\"interrupted\": \"true\""), std::string::npos)
      << manifest;
  fs::remove_all(dir);
}

TEST_F(ShutdownTest, RunDumbbellUnstoppedDoesNotThrow) {
  std::atomic<bool> stop{false};
  scenario::DumbbellConfig cfg;
  cfg.duration = sim::from_seconds(1.0);
  cfg.stats_start = sim::from_seconds(0.25);
  scenario::TcpFlowSpec flow;
  flow.cc = tcp::CcType::kCubic;
  flow.count = 1;
  flow.base_rtt = sim::from_millis(10);
  cfg.tcp_flows.push_back(flow);
  cfg.stop = &stop;
  const auto result = scenario::run_dumbbell(cfg);
  EXPECT_GT(result.events_executed, 0u);
}

}  // namespace
}  // namespace pi2::durable
