// AtomicFile: the destination path must never point at partial bytes —
// present exactly when a commit() succeeded, absent (or the old version)
// otherwise. The injected fault plan drives the disk-full / unwritable /
// failed-rename paths without needing a real broken disk.
#include "durable/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace pi2::durable {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "pi2_atomic_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void TearDown() override { AtomicFile::clear_faults(); }
};

TEST_F(AtomicFileTest, DestinationAppearsOnlyAfterCommit) {
  const std::string path = temp_path("commit.txt");
  fs::remove(path);
  {
    AtomicFile file{path};
    ASSERT_TRUE(file.healthy());
    EXPECT_TRUE(file.write("hello "));
    EXPECT_TRUE(file.printf("%s %d", "world", 42));
    EXPECT_FALSE(fs::exists(path)) << "no destination before commit";
    EXPECT_TRUE(fs::exists(path + ".tmp"));
    EXPECT_TRUE(file.commit().ok());
    EXPECT_TRUE(file.committed());
  }
  EXPECT_EQ(slurp(path), "hello world 42");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST_F(AtomicFileTest, CommitIsIdempotent) {
  const std::string path = temp_path("idem.txt");
  AtomicFile file{path};
  file.write("x");
  EXPECT_TRUE(file.commit().ok());
  EXPECT_TRUE(file.commit().ok());  // second call returns the first outcome
  fs::remove(path);
}

TEST_F(AtomicFileTest, AbortDropsTmpAndPreservesOldDestination) {
  const std::string path = temp_path("abort.txt");
  { std::ofstream(path) << "previous version"; }
  {
    AtomicFile file{path};
    file.write("half-written replacement");
    file.abort();
  }
  EXPECT_EQ(slurp(path), "previous version");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove(path);
}

TEST_F(AtomicFileTest, DestructorWithoutCommitAborts) {
  const std::string path = temp_path("dtor.txt");
  fs::remove(path);
  { AtomicFile file{path}; file.write("torn"); }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(AtomicFileTest, UnwritableDirectoryLatchesIoError) {
  AtomicFile file{"/dev/null/nope/artifact.json"};
  EXPECT_FALSE(file.healthy());
  EXPECT_EQ(file.status().code(), StatusCode::kIoError);
  EXPECT_NE(file.status().message().find("/dev/null/nope/artifact.json"),
            std::string::npos)
      << "error must name the offending path: " << file.status().message();
  EXPECT_FALSE(file.write("ignored"));  // sink, not crash
  EXPECT_FALSE(file.commit().ok());
}

TEST_F(AtomicFileTest, InjectedDiskFullFailsWriteAndRefusesCommit) {
  const std::string path = temp_path("enospc.txt");
  fs::remove(path);
  AtomicFile::Faults faults;
  faults.fail_write_after_bytes = 8;
  AtomicFile::set_faults(faults);
  AtomicFile file{path};
  EXPECT_TRUE(file.write("12345678"));  // exactly the budget
  EXPECT_FALSE(file.write("overflow"));
  EXPECT_EQ(file.status().code(), StatusCode::kIoError);
  EXPECT_NE(file.status().message().find(path), std::string::npos);
  EXPECT_FALSE(file.commit().ok()) << "a half-written file must not be renamed";
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(AtomicFileTest, InjectedOpenFailure) {
  AtomicFile::Faults faults;
  faults.fail_open = true;
  AtomicFile::set_faults(faults);
  AtomicFile file{temp_path("openfail.txt")};
  EXPECT_FALSE(file.healthy());
  EXPECT_EQ(file.status().code(), StatusCode::kIoError);
}

TEST_F(AtomicFileTest, InjectedCommitFailureLeavesNoDestination) {
  const std::string path = temp_path("commitfail.txt");
  fs::remove(path);
  AtomicFile::Faults faults;
  faults.fail_commit = true;
  AtomicFile::set_faults(faults);
  AtomicFile file{path};
  EXPECT_TRUE(file.write("content"));
  EXPECT_FALSE(file.commit().ok());
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(AtomicFileTest, AtomicWriteFileConvenience) {
  const std::string path = temp_path("oneshot.json");
  ASSERT_TRUE(atomic_write_file(path, "{\"ok\": true}\n").ok());
  EXPECT_EQ(slurp(path), "{\"ok\": true}\n");
  EXPECT_FALSE(atomic_write_file("/dev/null/nope/x.json", "data").ok());
  fs::remove(path);
}

TEST_F(AtomicFileTest, InjectWriteFaultSharesTheBudget) {
  EXPECT_FALSE(inject_write_fault(1 << 20)) << "unarmed plan never fails";
  AtomicFile::Faults faults;
  faults.fail_write_after_bytes = 4;
  AtomicFile::set_faults(faults);
  EXPECT_FALSE(inject_write_fault(4));
  EXPECT_TRUE(inject_write_fault(1)) << "budget exhausted -> simulated ENOSPC";
  AtomicFile::clear_faults();
  EXPECT_FALSE(inject_write_fault(1));
}

}  // namespace
}  // namespace pi2::durable
