// RunResult codec: a decoded result must be indistinguishable from the
// original for everything downstream of run_sweep — exact bit patterns, not
// approximately-equal doubles.
#include "durable/result_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "check/oracles.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/time.hpp"

namespace pi2::durable {
namespace {

bool same_bits(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

scenario::RunResult small_real_result() {
  scenario::DumbbellConfig cfg;
  cfg.duration = pi2::sim::from_seconds(2.0);
  cfg.stats_start = pi2::sim::from_seconds(0.5);
  cfg.seed = 7;
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.count = 2;
  cubic.base_rtt = pi2::sim::from_millis(10);
  cfg.tcp_flows.push_back(cubic);
  return scenario::run_dumbbell(cfg);
}

TEST(ResultCodec, RealRunRoundtripsWithIdenticalDigest) {
  const scenario::RunResult original = small_real_result();
  const std::string payload = encode_result(original);
  EXPECT_EQ(payload.find('\n'), std::string::npos)
      << "payload must be journal-line safe";

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(payload, decoded).ok());

  // The oracle digest folds every deterministic observable of a run; equal
  // digests mean downstream consumers cannot tell the copies apart.
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(original));

  // Spot-check the fields the figure printers and --json records read.
  EXPECT_TRUE(same_bits(decoded.mean_qdelay_ms, original.mean_qdelay_ms));
  EXPECT_TRUE(same_bits(decoded.p99_qdelay_ms, original.p99_qdelay_ms));
  EXPECT_TRUE(same_bits(decoded.utilization, original.utilization));
  EXPECT_EQ(decoded.events_executed, original.events_executed);
  EXPECT_EQ(decoded.window_counters.forwarded, original.window_counters.forwarded);
  EXPECT_EQ(decoded.window_counters.marked, original.window_counters.marked);
  ASSERT_EQ(decoded.flows.size(), original.flows.size());
  for (std::size_t i = 0; i < decoded.flows.size(); ++i) {
    EXPECT_TRUE(same_bits(decoded.flows[i].goodput_mbps,
                          original.flows[i].goodput_mbps));
  }
  ASSERT_EQ(decoded.qdelay_ms_series.points().size(),
            original.qdelay_ms_series.points().size());
  for (std::size_t i = 0; i < decoded.qdelay_ms_series.points().size(); ++i) {
    EXPECT_EQ(decoded.qdelay_ms_series.points()[i].t,
              original.qdelay_ms_series.points()[i].t);
    EXPECT_TRUE(same_bits(decoded.qdelay_ms_series.points()[i].value,
                          original.qdelay_ms_series.points()[i].value));
  }
  // Per-packet sampler: count and sum survive (quantiles deliberately
  // don't; see the codec header).
  EXPECT_EQ(decoded.qdelay_ms_packets.count(), original.qdelay_ms_packets.count());
  EXPECT_TRUE(same_bits(decoded.qdelay_ms_packets.mean(),
                        original.qdelay_ms_packets.mean()));
  EXPECT_EQ(decoded.classic_prob_samples.count(),
            original.classic_prob_samples.count());
}

TEST(ResultCodec, AwkwardDoublesRoundTripExactly) {
  scenario::RunResult result;
  result.mean_qdelay_ms = 0.1;  // not representable exactly: bit test matters
  result.p99_qdelay_ms = -0.0;
  result.utilization = std::numeric_limits<double>::denorm_min();
  scenario::FlowResult flow;
  flow.goodput_mbps = std::numeric_limits<double>::infinity();
  result.flows.push_back(flow);

  scenario::RunResult decoded;
  const std::string payload = encode_result(result);
  ASSERT_TRUE(decode_result(payload, decoded).ok());
  EXPECT_TRUE(same_bits(decoded.mean_qdelay_ms, 0.1));
  EXPECT_TRUE(same_bits(decoded.p99_qdelay_ms, -0.0));
  EXPECT_TRUE(same_bits(decoded.utilization,
                        std::numeric_limits<double>::denorm_min()));
  ASSERT_EQ(decoded.flows.size(), 1u);
  EXPECT_TRUE(same_bits(decoded.flows[0].goodput_mbps,
                        std::numeric_limits<double>::infinity()));
}

TEST(ResultCodec, BandCountersSurviveTheTrip) {
  scenario::RunResult result;
  result.band_l.enqueued = 101;
  result.band_l.forwarded = 90;
  result.band_l.marked = 7;
  result.band_l.aqm_dropped = 11;
  result.band_l.tail_dropped = 3;
  result.band_l.dequeue_dropped = 5;
  result.band_c.enqueued = 202;
  result.band_c.dequeue_dropped = 1;
  result.window_band_l.marked = 4;
  result.window_band_c.tail_dropped = 2;

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(encode_result(result), decoded).ok());
  EXPECT_EQ(decoded.band_l.enqueued, 101);
  EXPECT_EQ(decoded.band_l.forwarded, 90);
  EXPECT_EQ(decoded.band_l.marked, 7);
  EXPECT_EQ(decoded.band_l.aqm_dropped, 11);
  EXPECT_EQ(decoded.band_l.tail_dropped, 3);
  EXPECT_EQ(decoded.band_l.dequeue_dropped, 5);
  EXPECT_EQ(decoded.band_c.enqueued, 202);
  EXPECT_EQ(decoded.band_c.dequeue_dropped, 1);
  EXPECT_EQ(decoded.window_band_l.marked, 4);
  EXPECT_EQ(decoded.window_band_c.tail_dropped, 2);
  // The digest folds the band slices, so altering one must change it.
  scenario::RunResult tweaked = result;
  tweaked.window_band_c.tail_dropped = 0;
  EXPECT_NE(check::result_digest(tweaked), check::result_digest(result));
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(result));
}

TEST(ResultCodec, ViolationsSurviveTheTrip) {
  scenario::RunResult result;
  faults::InvariantViolation violation;
  violation.at = pi2::sim::from_millis(1234);
  violation.check = "backlog";
  violation.detail = "negative backlog: -1 bytes";
  result.violations.push_back(violation);

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(encode_result(result), decoded).ok());
  ASSERT_EQ(decoded.violations.size(), 1u);
  EXPECT_EQ(decoded.violations[0].at, violation.at);
  EXPECT_EQ(decoded.violations[0].check, "backlog");
  EXPECT_EQ(decoded.violations[0].detail, "negative backlog: -1 bytes");
}

TEST(ResultCodec, StructuralDamageIsCorruptNeverGarbage) {
  scenario::RunResult decoded;
  EXPECT_EQ(decode_result("", decoded).code(), StatusCode::kCorrupt);
  EXPECT_EQ(decode_result("wrong-magic 1 2 3", decoded).code(),
            StatusCode::kCorrupt);

  const scenario::RunResult blank;
  const std::string payload = encode_result(blank);
  // Truncations at every prefix must fail structurally, not crash or
  // half-populate.
  for (std::size_t cut = 0; cut + 1 < payload.size(); cut += 7) {
    scenario::RunResult victim;
    EXPECT_FALSE(decode_result(payload.substr(0, cut), victim).ok())
        << "truncation at " << cut << " must be rejected";
  }
  // Trailing garbage is also structural damage.
  EXPECT_FALSE(decode_result(payload + " deadbeef", decoded).ok());
}

TEST(ResultCodec, EmptyResultRoundtrips) {
  const scenario::RunResult empty;
  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(encode_result(empty), decoded).ok());
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(empty));
}

}  // namespace
}  // namespace pi2::durable
