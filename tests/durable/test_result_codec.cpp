// RunResult codec: a decoded result must be indistinguishable from the
// original for everything downstream of run_sweep — exact bit patterns, not
// approximately-equal doubles.
#include "durable/result_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "check/oracles.hpp"
#include "scenario/dumbbell.hpp"
#include "sim/time.hpp"

namespace pi2::durable {
namespace {

bool same_bits(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

scenario::RunResult small_real_result() {
  scenario::DumbbellConfig cfg;
  cfg.duration = pi2::sim::from_seconds(2.0);
  cfg.stats_start = pi2::sim::from_seconds(0.5);
  cfg.seed = 7;
  scenario::TcpFlowSpec cubic;
  cubic.cc = tcp::CcType::kCubic;
  cubic.count = 2;
  cubic.base_rtt = pi2::sim::from_millis(10);
  cfg.tcp_flows.push_back(cubic);
  return scenario::run_dumbbell(cfg);
}

TEST(ResultCodec, RealRunRoundtripsWithIdenticalDigest) {
  const scenario::RunResult original = small_real_result();
  const std::string payload = encode_result(original);
  EXPECT_EQ(payload.find('\n'), std::string::npos)
      << "payload must be journal-line safe";

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(payload, decoded).ok());

  // The oracle digest folds every deterministic observable of a run; equal
  // digests mean downstream consumers cannot tell the copies apart.
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(original));

  // Spot-check the fields the figure printers and --json records read.
  EXPECT_TRUE(same_bits(decoded.mean_qdelay_ms, original.mean_qdelay_ms));
  EXPECT_TRUE(same_bits(decoded.p99_qdelay_ms, original.p99_qdelay_ms));
  EXPECT_TRUE(same_bits(decoded.utilization, original.utilization));
  EXPECT_EQ(decoded.events_executed, original.events_executed);
  EXPECT_EQ(decoded.window_counters.forwarded, original.window_counters.forwarded);
  EXPECT_EQ(decoded.window_counters.marked, original.window_counters.marked);
  ASSERT_EQ(decoded.flows.size(), original.flows.size());
  for (std::size_t i = 0; i < decoded.flows.size(); ++i) {
    EXPECT_TRUE(same_bits(decoded.flows[i].goodput_mbps,
                          original.flows[i].goodput_mbps));
  }
  ASSERT_EQ(decoded.qdelay_ms_series.points().size(),
            original.qdelay_ms_series.points().size());
  for (std::size_t i = 0; i < decoded.qdelay_ms_series.points().size(); ++i) {
    EXPECT_EQ(decoded.qdelay_ms_series.points()[i].t,
              original.qdelay_ms_series.points()[i].t);
    EXPECT_TRUE(same_bits(decoded.qdelay_ms_series.points()[i].value,
                          original.qdelay_ms_series.points()[i].value));
  }
  // Per-packet sampler: count and sum survive (quantiles deliberately
  // don't; see the codec header).
  EXPECT_EQ(decoded.qdelay_ms_packets.count(), original.qdelay_ms_packets.count());
  EXPECT_TRUE(same_bits(decoded.qdelay_ms_packets.mean(),
                        original.qdelay_ms_packets.mean()));
  EXPECT_EQ(decoded.classic_prob_samples.count(),
            original.classic_prob_samples.count());
}

TEST(ResultCodec, AwkwardDoublesRoundTripExactly) {
  scenario::RunResult result;
  result.mean_qdelay_ms = 0.1;  // not representable exactly: bit test matters
  result.p99_qdelay_ms = -0.0;
  result.utilization = std::numeric_limits<double>::denorm_min();
  scenario::FlowResult flow;
  flow.goodput_mbps = std::numeric_limits<double>::infinity();
  result.flows.push_back(flow);

  scenario::RunResult decoded;
  const std::string payload = encode_result(result);
  ASSERT_TRUE(decode_result(payload, decoded).ok());
  EXPECT_TRUE(same_bits(decoded.mean_qdelay_ms, 0.1));
  EXPECT_TRUE(same_bits(decoded.p99_qdelay_ms, -0.0));
  EXPECT_TRUE(same_bits(decoded.utilization,
                        std::numeric_limits<double>::denorm_min()));
  ASSERT_EQ(decoded.flows.size(), 1u);
  EXPECT_TRUE(same_bits(decoded.flows[0].goodput_mbps,
                        std::numeric_limits<double>::infinity()));
}

TEST(ResultCodec, BandCountersSurviveTheTrip) {
  scenario::RunResult result;
  result.band_l.enqueued = 101;
  result.band_l.forwarded = 90;
  result.band_l.marked = 7;
  result.band_l.aqm_dropped = 11;
  result.band_l.tail_dropped = 3;
  result.band_l.dequeue_dropped = 5;
  result.band_c.enqueued = 202;
  result.band_c.dequeue_dropped = 1;
  result.window_band_l.marked = 4;
  result.window_band_c.tail_dropped = 2;

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(encode_result(result), decoded).ok());
  EXPECT_EQ(decoded.band_l.enqueued, 101);
  EXPECT_EQ(decoded.band_l.forwarded, 90);
  EXPECT_EQ(decoded.band_l.marked, 7);
  EXPECT_EQ(decoded.band_l.aqm_dropped, 11);
  EXPECT_EQ(decoded.band_l.tail_dropped, 3);
  EXPECT_EQ(decoded.band_l.dequeue_dropped, 5);
  EXPECT_EQ(decoded.band_c.enqueued, 202);
  EXPECT_EQ(decoded.band_c.dequeue_dropped, 1);
  EXPECT_EQ(decoded.window_band_l.marked, 4);
  EXPECT_EQ(decoded.window_band_c.tail_dropped, 2);
  // The digest folds the band slices, so altering one must change it.
  scenario::RunResult tweaked = result;
  tweaked.window_band_c.tail_dropped = 0;
  EXPECT_NE(check::result_digest(tweaked), check::result_digest(result));
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(result));
}

TEST(ResultCodec, LinkSlicesSurviveTheTrip) {
  scenario::RunResult result;
  scenario::LinkSlice a;
  a.name = "bottleneck";
  a.mean_qdelay_ms = 14.25;
  a.p99_qdelay_ms = 33.5;
  a.utilization = 0.875;
  a.counters.enqueued = 1000;
  a.counters.forwarded = 990;
  a.counters.dequeue_dropped = 1;
  a.window_counters.forwarded = 600;
  a.fault_counters.dropped = 2;
  a.fault_counters.rtt_changes = 1;
  a.guard_events = 3;
  a.final_backlog_packets = 9;
  scenario::LinkSlice b;
  b.name = "n1->n2";
  b.counters.marked = 55;
  result.links.push_back(a);
  result.links.push_back(b);

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(encode_result(result), decoded).ok());
  ASSERT_EQ(decoded.links.size(), 2u);
  EXPECT_EQ(decoded.links[0].name, "bottleneck");
  EXPECT_TRUE(same_bits(decoded.links[0].mean_qdelay_ms, 14.25));
  EXPECT_TRUE(same_bits(decoded.links[0].p99_qdelay_ms, 33.5));
  EXPECT_TRUE(same_bits(decoded.links[0].utilization, 0.875));
  EXPECT_EQ(decoded.links[0].counters.enqueued, 1000);
  EXPECT_EQ(decoded.links[0].counters.forwarded, 990);
  EXPECT_EQ(decoded.links[0].counters.dequeue_dropped, 1);
  EXPECT_EQ(decoded.links[0].window_counters.forwarded, 600);
  EXPECT_EQ(decoded.links[0].fault_counters.dropped, 2);
  EXPECT_EQ(decoded.links[0].fault_counters.rtt_changes, 1);
  EXPECT_EQ(decoded.links[0].guard_events, 3u);
  EXPECT_EQ(decoded.links[0].final_backlog_packets, 9);
  EXPECT_EQ(decoded.links[1].name, "n1->n2");
  EXPECT_EQ(decoded.links[1].counters.marked, 55);

  // The digest folds the link slices: altering one must change it, and the
  // decoded copy must be indistinguishable from the original.
  scenario::RunResult tweaked = result;
  tweaked.links[1].counters.marked = 54;
  EXPECT_NE(check::result_digest(tweaked), check::result_digest(result));
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(result));
}

TEST(ResultCodec, V3PayloadsStayReadable) {
  // A payload captured from the v3 encoder (before the links section
  // existed). It must keep decoding — resumed sweeps replay old journals —
  // and surface an empty links vector, exactly what a v3-era single-link
  // run carried.
  const std::string v3_payload =
      "pi2-result-v3 3039 1 28 2 3e8 3de 7 3 37 2 1 3e8 3de 7 3 37 2 1 258 "
      "255 32 0 0 0 190 189 5 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 2 0 0 1 0 "
      "4136e36000000000 413312d000000000 40fe848000000000 40fe848000000000 "
      "fa0 402c800000000000 4040c00000000000 3fec000000000000 1 3b9aca00 "
      "4029000000000000 1 77359400 3fa0000000000000 1 b2d05e00 "
      "4023000000000000 1 b2d05e00 3fe8000000000000 1 3fa0000000000000 1 "
      "3fa0000000000000 1 3fd0000000000000 1 3fd0000000000000 2 "
      "403c800000000000 2 1 0 0 3ff0000000000000 4013000000000000 3 1 3 0 1 "
      "4059000000000000 3fb0000000000000 0 0 1 12a05f200 c "
      "636f6e736572766174696f6e a 6f6666206279206f6e65";

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(v3_payload, decoded).ok());
  EXPECT_TRUE(decoded.links.empty());
  EXPECT_EQ(decoded.events_executed, 12345u);
  EXPECT_EQ(decoded.clamped_events, 1u);
  EXPECT_EQ(decoded.invariant_checks, 40u);
  EXPECT_EQ(decoded.counters.enqueued, 1000);
  EXPECT_EQ(decoded.counters.forwarded, 990);
  EXPECT_EQ(decoded.counters.marked, 55);
  EXPECT_EQ(decoded.band_l.enqueued, 600);
  EXPECT_EQ(decoded.band_c.enqueued, 400);
  EXPECT_TRUE(same_bits(decoded.mean_qdelay_ms, 14.25));
  EXPECT_TRUE(same_bits(decoded.p99_qdelay_ms, 33.5));
  EXPECT_TRUE(same_bits(decoded.utilization, 0.875));
  EXPECT_TRUE(same_bits(decoded.fluid.arrival_bytes, 1.5e6));
  EXPECT_EQ(decoded.fluid.ticks, 4000u);
  ASSERT_EQ(decoded.qdelay_ms_series.points().size(), 1u);
  EXPECT_TRUE(same_bits(decoded.qdelay_ms_series.points()[0].value, 12.5));
  ASSERT_EQ(decoded.flows.size(), 2u);
  EXPECT_EQ(decoded.flows[0].cc, tcp::CcType::kCubic);
  EXPECT_TRUE(same_bits(decoded.flows[0].goodput_mbps, 4.75));
  EXPECT_TRUE(decoded.flows[1].is_fluid);
  ASSERT_EQ(decoded.violations.size(), 1u);
  EXPECT_EQ(decoded.violations[0].check, "conservation");
  EXPECT_EQ(decoded.violations[0].detail, "off by one");

  // Re-encoding a v3-decoded result produces a v5 payload (with an empty
  // links section and a default resilience section) that decodes to the
  // same digest.
  scenario::RunResult again;
  const std::string v5_payload = encode_result(decoded);
  EXPECT_EQ(v5_payload.rfind("pi2-result-v5", 0), 0u);
  ASSERT_TRUE(decode_result(v5_payload, again).ok());
  EXPECT_EQ(check::result_digest(again), check::result_digest(decoded));

  // A v3 payload with trailing bytes (e.g. a glued links section) is still
  // structural damage, not silently accepted.
  EXPECT_FALSE(decode_result(v3_payload + " 1", decoded).ok());
}

TEST(ResultCodec, ResilienceReportSurvivesTheTrip) {
  scenario::RunResult result;
  stats::ResilienceReport& rr = result.resilience;
  rr.analyzed = true;
  rr.windows = 3;
  rr.recovered_windows = 2;
  rr.recovery_s = {0.6, -1.0, 1.25};
  rr.worst_recovery_s = -1.0;
  rr.mean_recovery_s = 0.925;
  rr.peak_qdelay_ms = 180.5;
  rr.pre_fault_mean_qdelay_ms = 19.75;
  rr.post_fault_mean_qdelay_ms = 21.5;
  rr.post_fault_delta_ms = 1.75;
  rr.violations_in_window = 4;
  rr.violations_outside = 1;

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(encode_result(result), decoded).ok());
  EXPECT_TRUE(decoded.resilience == result.resilience);

  // The digest folds the report, so altering any score must change it.
  scenario::RunResult tweaked = result;
  tweaked.resilience.worst_recovery_s = 2.0;
  EXPECT_NE(check::result_digest(tweaked), check::result_digest(result));
  tweaked = result;
  tweaked.resilience.recovery_s[1] = 0.5;
  EXPECT_NE(check::result_digest(tweaked), check::result_digest(result));
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(result));
}

TEST(ResultCodec, V4PayloadsStayReadable) {
  // A v4 payload is exactly a v5 payload minus the trailing resilience
  // section; build one from the encoder and re-badge the magic. It must
  // keep decoding — resumed sweeps replay v4-era journals — and surface the
  // default (unanalyzed) report.
  scenario::RunResult result;
  result.events_executed = 42;
  result.counters.enqueued = 7;
  scenario::LinkSlice link;
  link.name = "bottleneck";
  link.counters.enqueued = 7;
  result.links.push_back(std::move(link));

  const std::string v5_payload = encode_result(result);
  ASSERT_EQ(v5_payload.rfind("pi2-result-v5", 0), 0u);
  const std::string default_resilience_section =
      " 0 0 0 0000000000000000 0000000000000000 0000000000000000"
      " 0000000000000000 0000000000000000 0000000000000000 0 0 0";
  ASSERT_GE(v5_payload.size(), default_resilience_section.size());
  ASSERT_EQ(v5_payload.substr(v5_payload.size() -
                              default_resilience_section.size()),
            default_resilience_section)
      << "encoder no longer ends with the default resilience section; "
         "update this synthesizer";
  const std::string v4_payload =
      "pi2-result-v4" +
      v5_payload.substr(std::strlen("pi2-result-v5"),
                        v5_payload.size() - std::strlen("pi2-result-v5") -
                            default_resilience_section.size());

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(v4_payload, decoded).ok());
  EXPECT_FALSE(decoded.resilience.analyzed);
  EXPECT_TRUE(decoded.resilience == stats::ResilienceReport{});
  EXPECT_EQ(decoded.events_executed, 42u);
  ASSERT_EQ(decoded.links.size(), 1u);
  EXPECT_EQ(decoded.links[0].name, "bottleneck");
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(result));

  // A v4 payload with trailing bytes (e.g. a glued resilience section) is
  // still structural damage, not silently accepted.
  EXPECT_FALSE(decode_result(v4_payload + " 1", decoded).ok());
}

TEST(ResultCodec, ViolationsSurviveTheTrip) {
  scenario::RunResult result;
  faults::InvariantViolation violation;
  violation.at = pi2::sim::from_millis(1234);
  violation.check = "backlog";
  violation.detail = "negative backlog: -1 bytes";
  result.violations.push_back(violation);

  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(encode_result(result), decoded).ok());
  ASSERT_EQ(decoded.violations.size(), 1u);
  EXPECT_EQ(decoded.violations[0].at, violation.at);
  EXPECT_EQ(decoded.violations[0].check, "backlog");
  EXPECT_EQ(decoded.violations[0].detail, "negative backlog: -1 bytes");
}

TEST(ResultCodec, StructuralDamageIsCorruptNeverGarbage) {
  scenario::RunResult decoded;
  EXPECT_EQ(decode_result("", decoded).code(), StatusCode::kCorrupt);
  EXPECT_EQ(decode_result("wrong-magic 1 2 3", decoded).code(),
            StatusCode::kCorrupt);

  const scenario::RunResult blank;
  const std::string payload = encode_result(blank);
  // Truncations at every prefix must fail structurally, not crash or
  // half-populate.
  for (std::size_t cut = 0; cut + 1 < payload.size(); cut += 7) {
    scenario::RunResult victim;
    EXPECT_FALSE(decode_result(payload.substr(0, cut), victim).ok())
        << "truncation at " << cut << " must be rejected";
  }
  // Trailing garbage is also structural damage.
  EXPECT_FALSE(decode_result(payload + " deadbeef", decoded).ok());
}

TEST(ResultCodec, EmptyResultRoundtrips) {
  const scenario::RunResult empty;
  scenario::RunResult decoded;
  ASSERT_TRUE(decode_result(encode_result(empty), decoded).ok());
  EXPECT_EQ(check::result_digest(decoded), check::result_digest(empty));
}

}  // namespace
}  // namespace pi2::durable
