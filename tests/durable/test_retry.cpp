// RetryPolicy: deterministic backoff schedules — exponential growth, cap,
// and seed-derived jitter that never consults the wall clock.
#include "durable/retry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>

namespace pi2::durable {
namespace {

using std::chrono::milliseconds;

TEST(RetryPolicy, DefaultsAreValid) {
  const RetryPolicy policy;
  EXPECT_TRUE(policy.valid());
  EXPECT_EQ(policy.max_attempts, 2);
}

TEST(RetryPolicy, ValidRejectsBadShapes) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.valid());
  policy = {};
  policy.backoff_multiplier = 0.5;
  EXPECT_FALSE(policy.valid());
  policy = {};
  policy.jitter_fraction = 1.5;
  EXPECT_FALSE(policy.valid());
  policy = {};
  policy.attempt_deadline = milliseconds{-1};
  EXPECT_FALSE(policy.valid());
}

TEST(RetryPolicy, NoBackoffBaseMeansImmediateRetry) {
  const RetryPolicy policy;  // backoff_base = 0
  EXPECT_EQ(policy.backoff_before(0, 1), milliseconds{0});
  EXPECT_EQ(policy.backoff_before(5, 3), milliseconds{0});
}

TEST(RetryPolicy, AttemptZeroNeverSleeps) {
  RetryPolicy policy;
  policy.backoff_base = milliseconds{100};
  EXPECT_EQ(policy.backoff_before(0, 0), milliseconds{0});
  EXPECT_EQ(policy.backoff_before(0, -1), milliseconds{0});
}

TEST(RetryPolicy, ExponentialDoublingWithoutJitter) {
  RetryPolicy policy;
  policy.backoff_base = milliseconds{100};
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.0;
  EXPECT_EQ(policy.backoff_before(0, 1), milliseconds{100});
  EXPECT_EQ(policy.backoff_before(0, 2), milliseconds{200});
  EXPECT_EQ(policy.backoff_before(0, 3), milliseconds{400});
}

TEST(RetryPolicy, BackoffIsCapped) {
  RetryPolicy policy;
  policy.backoff_base = milliseconds{100};
  policy.backoff_multiplier = 10.0;
  policy.jitter_fraction = 0.0;
  policy.backoff_max = milliseconds{250};
  EXPECT_EQ(policy.backoff_before(0, 1), milliseconds{100});
  EXPECT_EQ(policy.backoff_before(0, 2), milliseconds{250});
  EXPECT_EQ(policy.backoff_before(0, 9), milliseconds{250});
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.backoff_base = milliseconds{1000};
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.25;
  policy.jitter_seed = 42;

  std::set<long long> distinct;
  for (std::uint64_t task = 0; task < 32; ++task) {
    const auto a = policy.backoff_before(task, 1);
    const auto b = policy.backoff_before(task, 1);
    EXPECT_EQ(a, b) << "same (seed, task, attempt) -> same delay";
    EXPECT_GE(a.count(), 750) << "jitter below -25%";
    EXPECT_LE(a.count(), 1250) << "jitter above +25%";
    distinct.insert(a.count());
  }
  EXPECT_GT(distinct.size(), 8u) << "jitter must actually spread tasks";

  RetryPolicy other = policy;
  other.jitter_seed = 43;
  bool any_differs = false;
  for (std::uint64_t task = 0; task < 32; ++task) {
    if (other.backoff_before(task, 1) != policy.backoff_before(task, 1)) {
      any_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_differs) << "jitter_seed must influence the schedule";
}

TEST(RetryPolicy, JitterNeverExceedsBackoffMax) {
  RetryPolicy policy;
  policy.backoff_base = milliseconds{1000};
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 1.0;
  policy.backoff_max = milliseconds{1000};
  for (std::uint64_t task = 0; task < 64; ++task) {
    EXPECT_LE(policy.backoff_before(task, 1).count(), 1000);
    EXPECT_GE(policy.backoff_before(task, 1).count(), 0);
  }
}

}  // namespace
}  // namespace pi2::durable
