// Status taxonomy: factories carry path/errno, update() keeps the first
// error, InterruptedError unwinds as a std::runtime_error.
#include "durable/status.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>

namespace pi2::durable {
namespace {

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
}

TEST(Status, IoErrorCarriesPathAndErrno) {
  const Status status = Status::io_error("/data/run.json", ENOSPC, "write");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("/data/run.json"), std::string::npos);
  EXPECT_NE(status.message().find("write"), std::string::npos);
  // strerror(ENOSPC) mentions space on every libc we build against.
  EXPECT_NE(status.message().find("space"), std::string::npos);
}

TEST(Status, FactoriesSetTheirCodes) {
  EXPECT_EQ(Status::corrupt("torn record").code(), StatusCode::kCorrupt);
  EXPECT_EQ(Status::interrupted("signal").code(), StatusCode::kInterrupted);
  EXPECT_EQ(Status::invalid("empty path").code(), StatusCode::kInvalid);
}

TEST(Status, ShardMergeFactoriesSetTheirCodes) {
  EXPECT_EQ(Status::foreign_campaign("wrong name").code(),
            StatusCode::kForeignCampaign);
  EXPECT_EQ(Status::stale_digest("spec edited").code(),
            StatusCode::kStaleDigest);
  EXPECT_EQ(Status::shard_overlap("double claim").code(),
            StatusCode::kShardOverlap);
  EXPECT_EQ(Status::shard_gap("uncovered points").code(),
            StatusCode::kShardGap);
  EXPECT_EQ(Status::duplicate_point("two payloads").code(),
            StatusCode::kDuplicatePoint);
}

TEST(Status, ShardMergeMessagesLeadWithTheCodeName) {
  // Operators grep journals/CI logs for these prefixes; keep them stable.
  EXPECT_EQ(Status::foreign_campaign("x").message(), "foreign-campaign: x");
  EXPECT_EQ(Status::stale_digest("x").message(), "stale-digest: x");
  EXPECT_EQ(Status::shard_overlap("x").message(), "shard-overlap: x");
  EXPECT_EQ(Status::shard_gap("x").message(), "shard-gap: x");
  EXPECT_EQ(Status::duplicate_point("x").message(), "duplicate-point: x");
}

TEST(Status, UpdateKeepsFirstError) {
  Status status;
  status.update(Status());  // ok onto ok: still ok
  EXPECT_TRUE(status.ok());
  const Status first = Status::io_error("a", EACCES, "open");
  status.update(first);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  status.update(Status::corrupt("later failure"));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), first.message());
  status.update(Status());  // ok never clears an error
  EXPECT_FALSE(status.ok());
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(to_string(StatusCode::kOk), "ok");
  EXPECT_STREQ(to_string(StatusCode::kIoError), "io-error");
  EXPECT_STREQ(to_string(StatusCode::kCorrupt), "corrupt");
  EXPECT_STREQ(to_string(StatusCode::kInterrupted), "interrupted");
  EXPECT_STREQ(to_string(StatusCode::kInvalid), "invalid");
  EXPECT_STREQ(to_string(StatusCode::kForeignCampaign), "foreign-campaign");
  EXPECT_STREQ(to_string(StatusCode::kStaleDigest), "stale-digest");
  EXPECT_STREQ(to_string(StatusCode::kShardOverlap), "shard-overlap");
  EXPECT_STREQ(to_string(StatusCode::kShardGap), "shard-gap");
  EXPECT_STREQ(to_string(StatusCode::kDuplicatePoint), "duplicate-point");
}

TEST(InterruptedError, IsARuntimeError) {
  try {
    throw InterruptedError("stopped at t=1s");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("stopped"), std::string::npos);
    return;
  }
  FAIL() << "InterruptedError must be catchable as std::runtime_error";
}

}  // namespace
}  // namespace pi2::durable
