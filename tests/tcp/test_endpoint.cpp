#include "tcp/endpoint.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "sim/simulator.hpp"
#include "tcp/cubic.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/reno.hpp"

namespace pi2::tcp {
namespace {

using pi2::net::Ecn;
using pi2::net::Packet;
using pi2::sim::from_millis;
using pi2::sim::Simulator;
using pi2::sim::Time;

/// Direct sender<->receiver harness over a fixed-delay channel with
/// test-controlled loss and marking.
class Harness {
 public:
  explicit Harness(std::unique_ptr<CongestionControl> cc,
                   std::int64_t total_segments = -1)
      : sim_(1), receiver_(sim_, 0) {
    TcpSender::Config config;
    config.flow = 0;
    config.total_segments = total_segments;
    // The harness channel has no bandwidth limit; cap the window so slow
    // start cannot double itself into millions of in-flight segments.
    config.max_cwnd = 5000.0;
    sender_ = std::make_unique<TcpSender>(sim_, config, std::move(cc));
    sender_->set_output([this](Packet p) {
      ++data_sent_;
      if (drop_seqs_.erase(p.seq) > 0 && p.retransmit == false) {
        ++dropped_;
        return;  // lost on the forward path
      }
      if (mark_all_ && p.ecn != Ecn::kNotEct) p.ecn = Ecn::kCe;
      sim_.after(from_millis(10), [this, p] { receiver_.on_data(p); });
    });
    receiver_.set_ack_path([this](Packet a) {
      last_ack_ = a;
      sim_.after(from_millis(10), [this, a] { sender_->on_ack(a); });
    });
    receiver_.set_delivery_probe([this](const Packet&) { ++delivered_; });
  }

  Simulator& sim() { return sim_; }
  TcpSender& sender() { return *sender_; }
  TcpReceiver& receiver() { return receiver_; }

  void drop_first_transmission_of(std::int64_t seq) { drop_seqs_.insert(seq); }
  void mark_everything(bool on) { mark_all_ = on; }

  std::int64_t delivered() const { return delivered_; }
  std::int64_t data_sent() const { return data_sent_; }
  const Packet& last_ack() const { return last_ack_; }

 private:
  Simulator sim_;
  std::unique_ptr<TcpSender> sender_;
  TcpReceiver receiver_;
  std::set<std::int64_t> drop_seqs_;
  bool mark_all_ = false;
  std::int64_t delivered_ = 0;
  std::int64_t data_sent_ = 0;
  std::int64_t dropped_ = 0;
  Packet last_ack_;
};

TEST(TcpEndpoint, TransfersFiniteFlowCompletely) {
  Harness h{make_reno(), 100};
  bool completed = false;
  h.sender().set_completion_callback([&] { completed = true; });
  h.sender().start();
  h.sim().run_until(from_millis(60000));
  EXPECT_TRUE(completed);
  EXPECT_EQ(h.delivered(), 100);
  EXPECT_EQ(h.receiver().rcv_nxt(), 100);
}

TEST(TcpEndpoint, InitialWindowIsSentImmediately) {
  Harness h{make_reno()};
  h.sender().start();
  // Before any ACK returns (RTT = 20 ms), exactly IW segments are out.
  h.sim().run_until(from_millis(5));
  EXPECT_EQ(h.data_sent(), static_cast<std::int64_t>(kInitialWindow));
}

TEST(TcpEndpoint, AckClockGrowsWindowInSlowStart) {
  Harness h{make_reno()};
  h.sender().start();
  h.sim().run_until(from_millis(100));  // ~5 RTTs
  EXPECT_GT(h.sender().cc().cwnd(), 100.0);
}

TEST(TcpEndpoint, SingleLossTriggersFastRetransmitNotTimeout) {
  Harness h{make_reno(), 2000};
  h.drop_first_transmission_of(50);
  h.sender().start();
  h.sim().run_until(from_millis(20000));
  EXPECT_EQ(h.receiver().rcv_nxt(), 2000);
  EXPECT_GE(h.sender().retransmits(), 1);
  EXPECT_EQ(h.sender().timeouts(), 0);
}

TEST(TcpEndpoint, MultipleLossesInWindowRecoverViaPartialAcks) {
  Harness h{make_reno(), 2000};
  h.drop_first_transmission_of(60);
  h.drop_first_transmission_of(61);
  h.drop_first_transmission_of(70);
  h.sender().start();
  h.sim().run_until(from_millis(30000));
  EXPECT_EQ(h.receiver().rcv_nxt(), 2000);
  EXPECT_GE(h.sender().retransmits(), 3);
}

TEST(TcpEndpoint, LossHalvesRenoWindow) {
  // Compare against a loss-free control at the same simulated time: the
  // slow-start race makes absolute before/after comparisons meaningless.
  Harness lossy{make_reno()};
  Harness control{make_reno()};
  lossy.drop_first_transmission_of(5000);
  lossy.sender().start();
  control.sender().start();
  lossy.sim().run_until(from_millis(400));
  control.sim().run_until(from_millis(400));
  EXPECT_LT(lossy.sender().cc().cwnd(), control.sender().cc().cwnd() * 0.75);
  EXPECT_FALSE(lossy.sender().cc().in_slow_start());
  EXPECT_TRUE(control.sender().cc().in_slow_start());
}

TEST(TcpEndpoint, RecoveryExitsWhenRecoverPointAcked) {
  Harness h{make_reno(), 3000};
  h.drop_first_transmission_of(100);
  h.sender().start();
  h.sim().run_until(from_millis(30000));
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.receiver().rcv_nxt(), 3000);
}

TEST(TcpEndpoint, RttIsEstimatedFromEchoedTimestamps) {
  Harness h{make_reno()};
  h.sender().start();
  h.sim().run_until(from_millis(500));
  EXPECT_NEAR(h.sender().smoothed_rtt_s(), 0.020, 0.005);
}

TEST(TcpEndpoint, StopHaltsTransmission) {
  Harness h{make_reno()};
  h.sender().start();
  h.sim().run_until(from_millis(100));
  h.sender().stop();
  const auto sent = h.data_sent();
  h.sim().run_until(from_millis(2000));
  EXPECT_EQ(h.data_sent(), sent);
}

TEST(TcpEndpoint, ClassicEcnEchoReducesEcnCubicOncePerRtt) {
  Harness h{make_ecn_cubic()};
  h.sender().start();
  h.sim().run_until(from_millis(300));
  h.mark_everything(true);
  h.sim().run_until(from_millis(400));  // several RTTs of solid marking
  // One reduction per RTT (not per packet): over ~5 marked RTTs the window
  // shrinks by at most 0.7^5, while per-packet reactions would floor it.
  const double after = h.sender().cc().cwnd();
  EXPECT_FALSE(h.sender().cc().in_slow_start());
  EXPECT_GT(after, kMinWindow);
  h.sim().run_until(from_millis(1000));
  // Sustained marking keeps pulling it down towards the floor.
  EXPECT_LT(h.sender().cc().cwnd(), after);
}

TEST(TcpEndpoint, EceLatchesUntilCwr) {
  Harness h{make_ecn_cubic()};
  h.sender().start();
  h.sim().run_until(from_millis(200));
  h.mark_everything(true);
  h.sim().run_until(from_millis(240));
  EXPECT_TRUE(h.last_ack().ece);
  h.mark_everything(false);
  // The latch clears once the sender's CWR-flagged packet arrives.
  h.sim().run_until(from_millis(400));
  EXPECT_FALSE(h.last_ack().ece);
}

TEST(TcpEndpoint, DctcpSeesPerPacketCeEcho) {
  Harness h{make_dctcp()};
  h.sender().start();
  h.sim().run_until(from_millis(200));
  h.mark_everything(true);
  h.sim().run_until(from_millis(260));
  EXPECT_TRUE(h.last_ack().ce_echo);
  h.mark_everything(false);
  h.sim().run_until(from_millis(320));
  // Accurate feedback: echo drops immediately with the marking, no latch.
  EXPECT_FALSE(h.last_ack().ce_echo);
}

TEST(TcpEndpoint, DctcpPacketsCarryEct1) {
  Harness h{make_dctcp()};
  Ecn seen = Ecn::kNotEct;
  // Re-wire output to observe the codepoint.
  h.sender().set_output([&](Packet p) { seen = p.ecn; });
  h.sender().start();
  h.sim().run_until(from_millis(1));
  EXPECT_EQ(seen, Ecn::kEct1);
}

TEST(TcpEndpoint, ReorderingIsAbsorbedByReceiver) {
  Simulator sim{1};
  TcpReceiver receiver{sim, 0};
  std::int64_t acked = -1;
  receiver.set_ack_path([&](Packet a) { acked = a.ack_seq; });
  Packet p;
  p.flow = 0;
  p.seq = 1;
  receiver.on_data(p);  // out of order
  EXPECT_EQ(acked, 0);
  p.seq = 0;
  receiver.on_data(p);  // fills the hole
  EXPECT_EQ(acked, 2);
}

TEST(TcpEndpoint, DuplicateDataIsAckedButNotRedelivered) {
  Simulator sim{1};
  TcpReceiver receiver{sim, 0};
  int deliveries = 0;
  std::int64_t acked = -1;
  receiver.set_delivery_probe([&](const Packet&) { ++deliveries; });
  receiver.set_ack_path([&](Packet a) { acked = a.ack_seq; });
  Packet p;
  p.flow = 0;
  p.seq = 0;
  receiver.on_data(p);
  receiver.on_data(p);  // duplicate
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(acked, 1);
}

TEST(TcpEndpoint, RtoRecoversTotalLossOfWindow) {
  Harness h{make_reno(), 300};
  // Drop the entire initial window so no dup ACKs can arrive at all.
  for (std::int64_t s = 0; s < 10; ++s) h.drop_first_transmission_of(s);
  h.sender().start();
  h.sim().run_until(from_millis(60000));
  EXPECT_EQ(h.receiver().rcv_nxt(), 300);
  EXPECT_GE(h.sender().timeouts(), 1);
}

TEST(TcpEndpoint, CompletionFiresExactlyOnce) {
  Harness h{make_reno(), 50};
  int completions = 0;
  h.sender().set_completion_callback([&] { ++completions; });
  h.sender().start();
  h.sim().run_until(from_millis(20000));
  EXPECT_EQ(completions, 1);
}

TEST(TcpEndpoint, MaxCwndCapsInflight) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  config.max_cwnd = 4.0;
  TcpSender sender{sim, config, make_reno()};
  std::int64_t sent = 0;
  sender.set_output([&](Packet) { ++sent; });
  sender.start();
  sim.run_until(from_millis(50));
  EXPECT_EQ(sent, 4);
}

}  // namespace
}  // namespace pi2::tcp
