#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "tcp/endpoint.hpp"

namespace pi2::tcp {
namespace {

using pi2::net::Ecn;
using pi2::net::Packet;
using pi2::sim::from_millis;
using pi2::sim::Simulator;

Packet data(std::int64_t seq, Ecn ecn = Ecn::kNotEct) {
  Packet p;
  p.flow = 0;
  p.seq = seq;
  p.ecn = ecn;
  return p;
}

TEST(DelayedAcks, AcksEverySecondSegment) {
  Simulator sim{1};
  TcpReceiver::Options options;
  options.delayed_acks = true;
  TcpReceiver receiver{sim, 0, options};
  int acks = 0;
  receiver.set_ack_path([&](Packet) { ++acks; });
  for (int i = 0; i < 10; ++i) receiver.on_data(data(i));
  EXPECT_EQ(acks, 5);
}

TEST(DelayedAcks, TimerFlushesOddSegment) {
  Simulator sim{1};
  TcpReceiver::Options options;
  options.delayed_acks = true;
  TcpReceiver receiver{sim, 0, options};
  std::int64_t last_ack = -1;
  receiver.set_ack_path([&](Packet a) { last_ack = a.ack_seq; });
  receiver.on_data(data(0));  // held back
  EXPECT_EQ(last_ack, -1);
  sim.run_until(from_millis(50));  // past the 40 ms delack timeout
  EXPECT_EQ(last_ack, 1);
}

TEST(DelayedAcks, OutOfOrderAckedImmediately) {
  Simulator sim{1};
  TcpReceiver::Options options;
  options.delayed_acks = true;
  TcpReceiver receiver{sim, 0, options};
  int acks = 0;
  receiver.set_ack_path([&](Packet) { ++acks; });
  receiver.on_data(data(1));  // gap -> immediate dup ACK
  EXPECT_EQ(acks, 1);
  receiver.on_data(data(2));  // still a gap
  EXPECT_EQ(acks, 2);
}

TEST(DelayedAcks, CeMarkedAckedImmediately) {
  // DCTCP's accurate feedback cannot be delayed: the CE state of each
  // packet must be echoed before it is aggregated away.
  Simulator sim{1};
  TcpReceiver::Options options;
  options.delayed_acks = true;
  TcpReceiver receiver{sim, 0, options};
  int acks = 0;
  bool last_echo = false;
  receiver.set_ack_path([&](Packet a) {
    ++acks;
    last_echo = a.ce_echo;
  });
  receiver.on_data(data(0, Ecn::kCe));
  EXPECT_EQ(acks, 1);
  EXPECT_TRUE(last_echo);
}

TEST(DelayedAcks, DisabledMeansAckPerSegment) {
  Simulator sim{1};
  TcpReceiver receiver{sim, 0};
  int acks = 0;
  receiver.set_ack_path([&](Packet) { ++acks; });
  for (int i = 0; i < 7; ++i) receiver.on_data(data(i));
  EXPECT_EQ(acks, 7);
}

TEST(DelayedAcks, EndToEndTransferStillCompletes) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  config.total_segments = 200;
  TcpSender sender{sim, config, make_reno()};
  TcpReceiver::Options options;
  options.delayed_acks = true;
  TcpReceiver receiver{sim, 0, options};
  bool completed = false;
  sender.set_completion_callback([&] { completed = true; });
  sender.set_output([&](Packet p) {
    sim.after(from_millis(10), [&receiver, p] { receiver.on_data(p); });
  });
  receiver.set_ack_path([&](Packet a) {
    sim.after(from_millis(10), [&sender, a] { sender.on_ack(a); });
  });
  sender.start();
  sim.run_until(from_millis(60000));
  EXPECT_TRUE(completed);
  EXPECT_EQ(receiver.rcv_nxt(), 200);
}

TEST(DelayedAcks, HalvesAckTrafficWithoutSlowingGrowth) {
  // The congestion controls use appropriate byte counting (growth driven by
  // segments ACKed, not ACK arrivals), so delayed ACKs halve the reverse-
  // path packet count while leaving the window trajectory intact.
  auto run = [](bool delack) {
    Simulator sim{1};
    TcpSender::Config config;
    config.flow = 0;
    config.max_cwnd = 500;
    TcpSender sender{sim, config, make_reno()};
    TcpReceiver::Options options;
    options.delayed_acks = delack;
    TcpReceiver receiver{sim, 0, options};
    std::int64_t acks = 0;
    sender.set_output([&sim, &receiver](Packet p) {
      sim.after(from_millis(10), [&receiver, p] { receiver.on_data(p); });
    });
    receiver.set_ack_path([&sim, &sender, &acks](Packet a) {
      ++acks;
      sim.after(from_millis(10), [&sender, a] { sender.on_ack(a); });
    });
    sender.start();
    sim.run_until(from_millis(400));
    return std::pair{acks, sender.cc().cwnd()};
  };
  const auto [acks_delack, cwnd_delack] = run(true);
  const auto [acks_per_pkt, cwnd_per_pkt] = run(false);
  EXPECT_LT(acks_delack, acks_per_pkt * 6 / 10);  // ~half the ACKs
  EXPECT_NEAR(cwnd_delack, cwnd_per_pkt, cwnd_per_pkt * 0.2);
}

}  // namespace
}  // namespace pi2::tcp
