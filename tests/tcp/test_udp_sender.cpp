#include "tcp/udp_sender.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace pi2::tcp {
namespace {

using pi2::sim::from_seconds;
using pi2::sim::Simulator;

TEST(UdpSender, SendsAtConfiguredRate) {
  Simulator sim;
  UdpSender::Config config;
  config.rate_bps = 6e6;
  config.packet_bytes = 1500;
  UdpSender udp{sim, config};
  std::int64_t bytes = 0;
  udp.set_output([&](net::Packet p) { bytes += p.size; });
  udp.start();
  sim.run_until(from_seconds(10.0));
  // 6 Mb/s for 10 s = 7.5 MB.
  EXPECT_NEAR(static_cast<double>(bytes) * 8.0 / 10.0, 6e6, 6e6 * 0.01);
}

TEST(UdpSender, EvenlySpacedPackets) {
  Simulator sim;
  UdpSender::Config config;
  config.rate_bps = 1.2e6;  // 1500 B -> 10 ms spacing
  UdpSender udp{sim, config};
  std::vector<pi2::sim::Time> times;
  udp.set_output([&](net::Packet) { times.push_back(sim.now()); });
  udp.start();
  sim.run_until(from_seconds(0.1));
  ASSERT_GE(times.size(), 3u);
  const auto gap = times[1] - times[0];
  EXPECT_EQ(gap, times[2] - times[1]);
  EXPECT_NEAR(pi2::sim::to_millis(gap), 10.0, 0.01);
}

TEST(UdpSender, StopHaltsAndStartResumesIdempotently) {
  Simulator sim;
  UdpSender udp{sim, UdpSender::Config{}};
  int sent = 0;
  udp.set_output([&](net::Packet) { ++sent; });
  udp.start();
  udp.start();  // idempotent: no double timers
  sim.run_until(from_seconds(0.01));
  const int after_10ms = sent;
  udp.stop();
  sim.run_until(from_seconds(1.0));
  EXPECT_EQ(sent, after_10ms);
}

TEST(UdpSender, PacketsCarryConfiguredEcnAndFlow) {
  Simulator sim;
  UdpSender::Config config;
  config.flow = 7;
  config.ecn = net::Ecn::kEct1;
  UdpSender udp{sim, config};
  net::Packet seen;
  udp.set_output([&](net::Packet p) { seen = p; });
  udp.start();
  sim.run_until(from_seconds(0.001));
  EXPECT_EQ(seen.flow, 7);
  EXPECT_EQ(seen.ecn, net::Ecn::kEct1);
}

TEST(UdpSender, SequenceNumbersIncrease) {
  Simulator sim;
  UdpSender udp{sim, UdpSender::Config{}};
  std::vector<std::int64_t> seqs;
  udp.set_output([&](net::Packet p) { seqs.push_back(p.seq); });
  udp.start();
  sim.run_until(from_seconds(0.02));
  ASSERT_GE(seqs.size(), 2u);
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
}

}  // namespace
}  // namespace pi2::tcp
