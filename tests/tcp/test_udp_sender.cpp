#include "tcp/udp_sender.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace pi2::tcp {
namespace {

using pi2::sim::from_seconds;
using pi2::sim::Simulator;

TEST(UdpSender, SendsAtConfiguredRate) {
  Simulator sim;
  UdpSender::Config config;
  config.rate_bps = 6e6;
  config.packet_bytes = 1500;
  UdpSender udp{sim, config};
  std::int64_t bytes = 0;
  udp.set_output([&](net::Packet p) { bytes += p.size; });
  udp.start();
  sim.run_until(from_seconds(10.0));
  // 6 Mb/s for 10 s = 7.5 MB.
  EXPECT_NEAR(static_cast<double>(bytes) * 8.0 / 10.0, 6e6, 6e6 * 0.01);
}

TEST(UdpSender, EvenlySpacedPackets) {
  Simulator sim;
  UdpSender::Config config;
  config.rate_bps = 1.2e6;  // 1500 B -> 10 ms spacing
  UdpSender udp{sim, config};
  std::vector<pi2::sim::Time> times;
  udp.set_output([&](net::Packet) { times.push_back(sim.now()); });
  udp.start();
  sim.run_until(from_seconds(0.1));
  ASSERT_GE(times.size(), 3u);
  const auto gap = times[1] - times[0];
  EXPECT_EQ(gap, times[2] - times[1]);
  EXPECT_NEAR(pi2::sim::to_millis(gap), 10.0, 0.01);
}

TEST(UdpSender, StopHaltsAndStartResumesIdempotently) {
  Simulator sim;
  UdpSender udp{sim, UdpSender::Config{}};
  int sent = 0;
  udp.set_output([&](net::Packet) { ++sent; });
  udp.start();
  udp.start();  // idempotent: no double timers
  sim.run_until(from_seconds(0.01));
  const int after_10ms = sent;
  udp.stop();
  sim.run_until(from_seconds(1.0));
  EXPECT_EQ(sent, after_10ms);
}

TEST(UdpSender, PacketsCarryConfiguredEcnAndFlow) {
  Simulator sim;
  UdpSender::Config config;
  config.flow = 7;
  config.ecn = net::Ecn::kEct1;
  UdpSender udp{sim, config};
  net::Packet seen;
  udp.set_output([&](net::Packet p) { seen = p; });
  udp.start();
  sim.run_until(from_seconds(0.001));
  EXPECT_EQ(seen.flow, 7);
  EXPECT_EQ(seen.ecn, net::Ecn::kEct1);
}

TEST(UdpSender, OddRatePacingIntervalIsExactBitMath) {
  Simulator sim;
  UdpSender::Config config;
  config.rate_bps = 1e6;
  config.packet_bytes = 576;  // 576 B at 1 Mb/s -> 4.608 ms spacing
  UdpSender udp{sim, config};
  std::vector<pi2::sim::Time> times;
  udp.set_output([&](net::Packet) { times.push_back(sim.now()); });
  udp.start();
  sim.run_until(from_seconds(0.05));
  ASSERT_GE(times.size(), 4u);
  for (std::size_t i = 2; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], times[1] - times[0]);
  }
  EXPECT_NEAR(pi2::sim::to_millis(times[1] - times[0]), 4.608, 1e-6);
}

TEST(UdpSender, PacketBytesSetsSizeAndPreservesBitRate) {
  Simulator sim;
  UdpSender::Config config;
  config.rate_bps = 2e6;
  config.packet_bytes = 200;  // small datagrams: more packets, same bit-rate
  UdpSender udp{sim, config};
  std::int64_t bytes = 0;
  std::int64_t packets = 0;
  udp.set_output([&](net::Packet p) {
    EXPECT_EQ(p.size, 200);
    bytes += p.size;
    ++packets;
  });
  udp.start();
  sim.run_until(from_seconds(5.0));
  EXPECT_NEAR(static_cast<double>(bytes) * 8.0 / 5.0, 2e6, 2e6 * 0.01);
  // 2 Mb/s / (200 B * 8) = 1250 packets/s.
  EXPECT_NEAR(static_cast<double>(packets) / 5.0, 1250.0, 15.0);
}

TEST(UdpSender, RestartAfterStopResumesWithContinuedSequence) {
  Simulator sim;
  UdpSender::Config config;
  config.rate_bps = 1.2e6;  // 10 ms spacing
  UdpSender udp{sim, config};
  std::vector<std::int64_t> seqs;
  udp.set_output([&](net::Packet p) { seqs.push_back(p.seq); });
  udp.start();
  sim.run_until(from_seconds(0.05));
  udp.stop();
  const auto paused_at = seqs.size();
  sim.run_until(from_seconds(0.5));
  EXPECT_EQ(seqs.size(), paused_at);
  udp.start();
  sim.run_until(from_seconds(0.6));
  ASSERT_GT(seqs.size(), paused_at);
  // The sequence stream continues where it left off, no reset and no gap.
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
  }
}

TEST(UdpSender, SpacingAccumulatesNoDrift) {
  Simulator sim;
  UdpSender::Config config;
  config.rate_bps = 1.2e6;  // exactly 10 ms per 1500 B packet
  UdpSender udp{sim, config};
  std::int64_t packets = 0;
  udp.set_output([&](net::Packet) { ++packets; });
  udp.start();
  sim.run_until(from_seconds(10.0));
  // Ticks at 0, 10 ms, ..., < 10 s: exactly 1000 sends if the schedule does
  // not drift (a cumulative rounding error of one interval would show here).
  EXPECT_NEAR(static_cast<double>(packets), 1000.0, 1.0);
}

TEST(UdpSender, SequenceNumbersIncrease) {
  Simulator sim;
  UdpSender udp{sim, UdpSender::Config{}};
  std::vector<std::int64_t> seqs;
  udp.set_output([&](net::Packet p) { seqs.push_back(p.seq); });
  udp.start();
  sim.run_until(from_seconds(0.02));
  ASSERT_GE(seqs.size(), 2u);
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
}

}  // namespace
}  // namespace pi2::tcp
