// Edge cases of the sender state machine: RTO backoff, rewind/ACK races,
// completion under loss, idempotent lifecycle.
#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hpp"
#include "tcp/endpoint.hpp"
#include "tcp/reno.hpp"

namespace pi2::tcp {
namespace {

using pi2::net::Packet;
using pi2::sim::from_millis;
using pi2::sim::Simulator;

TEST(SenderEdges, RtoBacksOffExponentiallyInBlackhole) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  TcpSender sender{sim, config, make_reno()};
  std::vector<pi2::sim::Time> sends;
  sender.set_output([&](Packet) { sends.push_back(sim.now()); });
  sender.start();
  sim.run_until(from_millis(30000));
  // Initial window, then one retransmission per RTO; gaps must grow.
  ASSERT_GE(sender.timeouts(), 3);
  std::vector<double> gaps;
  for (std::size_t i = 11; i < sends.size(); ++i) {
    gaps.push_back(pi2::sim::to_seconds(sends[i] - sends[i - 1]));
  }
  ASSERT_GE(gaps.size(), 2u);
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    EXPECT_GT(gaps[i], gaps[i - 1] * 1.5);
  }
}

TEST(SenderEdges, BackoffResetsOnProgress) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  TcpSender sender{sim, config, make_reno()};
  bool blackhole = true;
  TcpReceiver receiver{sim, 0};
  receiver.set_ack_path([&](Packet a) {
    sim.after(from_millis(10), [&sender, a] { sender.on_ack(a); });
  });
  sender.set_output([&](Packet p) {
    if (!blackhole) {
      sim.after(from_millis(10), [&receiver, p] { receiver.on_data(p); });
    }
  });
  sender.start();
  sim.run_until(from_millis(5000));
  const auto timeouts_during_blackhole = sender.timeouts();
  ASSERT_GE(timeouts_during_blackhole, 2);
  blackhole = false;
  sim.run_until(from_millis(15000));
  // Once the path heals, the flow makes progress and stops timing out.
  EXPECT_GT(sender.snd_una(), 0);
  EXPECT_LE(sender.timeouts(), timeouts_during_blackhole + 2);
}

TEST(SenderEdges, AckBeyondRewoundSndNxtDoesNotResendOldData) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  TcpSender sender{sim, config, make_reno()};
  std::vector<std::int64_t> sent_seqs;
  sender.set_output([&](Packet p) { sent_seqs.push_back(p.seq); });
  sender.start();                      // sends 0..9
  sim.run_until(from_millis(1500));    // RTO fires, go-back-N to 0
  ASSERT_GE(sender.timeouts(), 1);
  // Now a cumulative ACK for everything up to 10 arrives (the originals
  // made it after all).
  Packet ack;
  ack.is_ack = true;
  ack.ack_seq = 10;
  ack.sent_at = sim.now() - from_millis(20);
  sent_seqs.clear();
  sender.on_ack(ack);
  // Whatever is sent next must be new data (seq >= 10), never a re-send of
  // ACKed segments.
  for (const auto seq : sent_seqs) EXPECT_GE(seq, 10);
  EXPECT_EQ(sender.snd_una(), 10);
  EXPECT_GE(sender.snd_nxt(), 10);
}

TEST(SenderEdges, StartIsIdempotent) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  TcpSender sender{sim, config, make_reno()};
  int sends = 0;
  sender.set_output([&](Packet) { ++sends; });
  sender.start();
  sender.start();
  sim.run_until(from_millis(1));
  EXPECT_EQ(sends, 10);  // one initial window, not two
}

TEST(SenderEdges, StopPreventsRtoFiring) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  TcpSender sender{sim, config, make_reno()};
  sender.set_output([](Packet) {});
  sender.start();
  sender.stop();
  sim.run_until(from_millis(10000));
  EXPECT_EQ(sender.timeouts(), 0);
}

TEST(SenderEdges, FiniteFlowCompletesDespiteLossOfLastSegment) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  config.total_segments = 20;
  TcpSender sender{sim, config, make_reno()};
  TcpReceiver receiver{sim, 0};
  bool completed = false;
  sender.set_completion_callback([&] { completed = true; });
  int drops_left = 1;
  sender.set_output([&](Packet p) {
    if (p.seq == 19 && !p.retransmit && drops_left-- > 0) return;  // tail loss
    sim.after(from_millis(10), [&receiver, p] { receiver.on_data(p); });
  });
  receiver.set_ack_path([&](Packet a) {
    sim.after(from_millis(10), [&sender, a] { sender.on_ack(a); });
  });
  sender.start();
  sim.run_until(from_millis(30000));
  // Tail loss cannot produce 3 dup ACKs; only the RTO can recover it.
  EXPECT_TRUE(completed);
  EXPECT_GE(sender.timeouts(), 1);
}

TEST(SenderEdges, AcksAfterCompletionAreIgnored) {
  Simulator sim{1};
  TcpSender::Config config;
  config.flow = 0;
  config.total_segments = 5;
  TcpSender sender{sim, config, make_reno()};
  TcpReceiver receiver{sim, 0};
  int completions = 0;
  sender.set_completion_callback([&] { ++completions; });
  sender.set_output([&](Packet p) {
    sim.after(from_millis(10), [&receiver, p] { receiver.on_data(p); });
  });
  receiver.set_ack_path([&](Packet a) {
    sim.after(from_millis(10), [&sender, a] { sender.on_ack(a); });
  });
  sender.start();
  sim.run_until(from_millis(5000));
  ASSERT_EQ(completions, 1);
  Packet stray;
  stray.is_ack = true;
  stray.ack_seq = 5;
  stray.sent_at = sim.now();
  sender.on_ack(stray);  // must not crash or re-complete
  EXPECT_EQ(completions, 1);
}

}  // namespace
}  // namespace pi2::tcp
