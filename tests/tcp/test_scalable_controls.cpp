#include "tcp/scalable.hpp"

#include <gtest/gtest.h>

#include "tcp/congestion_control.hpp"

namespace pi2::tcp {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;

constexpr pi2::sim::Duration kRtt = std::chrono::milliseconds{10};

Time at_ms(double ms) { return from_millis(ms); }

TEST(ScalableTcp, IdentifiesAsScalable) {
  ScalableTcp cc;
  EXPECT_EQ(cc.ect(), net::Ecn::kEct1);
  EXPECT_TRUE(cc.is_scalable());
  EXPECT_EQ(cc.name(), "scalable");
}

TEST(ScalableTcp, MimdGrowthProportionalToWindow) {
  ScalableTcp cc;
  cc.on_congestion_event(at_ms(0));  // leave slow start
  const double w0 = cc.cwnd();
  // One window's worth of ACKs grows the window by a*W (MIMD), not by 1.
  for (int i = 0; i < static_cast<int>(w0); ++i) {
    cc.on_ack(1, kRtt, at_ms(i), false);
  }
  EXPECT_NEAR(cc.cwnd() - w0, 0.01 * w0, 0.02);
}

TEST(ScalableTcp, SmallMultiplicativeDecrease) {
  ScalableTcp cc;
  for (int i = 0; i < 200; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  const double before = cc.cwnd();
  cc.on_congestion_event(at_ms(300));
  EXPECT_NEAR(cc.cwnd(), before * 0.875, 1e-9);
}

TEST(ScalableTcp, MarkTrainCountsAsOneEventPerHoldoff) {
  ScalableTcp cc;
  cc.on_congestion_event(at_ms(0));
  const double w0 = cc.cwnd();
  // A burst of marks within the holdoff window: only one reduction.
  for (int i = 0; i < 5; ++i) cc.on_ecn_sample(1, true, at_ms(1));
  EXPECT_NEAR(cc.cwnd(), w0 * 0.875, 1e-9);
}

TEST(ScalableTcp, SignalsPerRttConstantAcrossRates) {
  // The defining property (B = 1): at equilibrium p*W = 2b/a-ish constant;
  // here just check the response magnitude scales with W so c = pW is flat.
  ScalableTcp small;
  ScalableTcp large;
  small.on_congestion_event(at_ms(0));
  large.on_congestion_event(at_ms(0));
  for (int i = 0; i < 5000; ++i) large.on_ack(1, kRtt, at_ms(i), false);
  const double ws = small.cwnd();
  const double wl = large.cwnd();
  ASSERT_GT(wl, ws * 2);
  // Same *fractional* reduction regardless of size.
  small.on_congestion_event(at_ms(9999));
  large.on_congestion_event(at_ms(9999));
  EXPECT_NEAR(small.cwnd() / ws, large.cwnd() / wl, 1e-9);
}

TEST(ScalableTcp, ExactMimdPerAckArithmetic) {
  ScalableTcp cc;
  cc.on_congestion_event(at_ms(0));  // leave slow start
  double expected = cc.cwnd();
  // In congestion avoidance every ACKed segment adds exactly a = 0.01,
  // regardless of the current window (MIMD, not Reno's 1/W).
  cc.on_ack(1, kRtt, at_ms(1), false);
  expected += 0.01;
  EXPECT_DOUBLE_EQ(cc.cwnd(), expected);
  cc.on_ack(3, kRtt, at_ms(2), false);
  expected += 3 * 0.01;
  EXPECT_DOUBLE_EQ(cc.cwnd(), expected);
}

TEST(ScalableTcp, RecoveryAcksDoNotGrow) {
  ScalableTcp cc;
  cc.on_congestion_event(at_ms(0));
  const double w0 = cc.cwnd();
  for (int i = 0; i < 50; ++i) cc.on_ack(1, kRtt, at_ms(i), true);
  EXPECT_DOUBLE_EQ(cc.cwnd(), w0);
}

TEST(ScalableTcp, SlowStartAfterTimeoutCapsExactlyAtSsthresh) {
  ScalableTcp cc;
  for (int i = 0; i < 100; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  const double before = cc.cwnd();
  cc.on_timeout(at_ms(200));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), before * 0.875);
  EXPECT_TRUE(cc.in_slow_start());
  // Slow start grows by the ACKed amount, clamped to ssthresh exactly.
  cc.on_ack(4, kRtt, at_ms(201), false);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 5.0);
  for (int i = 0; i < 1000 && cc.in_slow_start(); ++i) {
    cc.on_ack(8, kRtt, at_ms(202 + i), false);
  }
  EXPECT_DOUBLE_EQ(cc.cwnd(), before * 0.875);
}

TEST(ScalableTcp, HoldoffExpiryAllowsTheNextReduction) {
  ScalableTcp cc;
  cc.on_congestion_event(at_ms(0));
  const double w0 = cc.cwnd();
  cc.on_ecn_sample(1, true, at_ms(0));
  EXPECT_DOUBLE_EQ(cc.cwnd(), w0 * 0.875);
  cc.on_ecn_sample(1, true, at_ms(9.999));  // still inside the 10 ms holdoff
  EXPECT_DOUBLE_EQ(cc.cwnd(), w0 * 0.875);
  cc.on_ecn_sample(1, true, at_ms(10));  // holdoff expired: second event
  EXPECT_DOUBLE_EQ(cc.cwnd(), w0 * 0.875 * 0.875);
}

TEST(ScalableTcp, ReductionKeepsCongestionAvoidance) {
  // ssthresh tracks the reduced window so marks never re-enter slow start.
  ScalableTcp cc;
  cc.on_congestion_event(at_ms(0));
  cc.on_ecn_sample(1, true, at_ms(1));
  EXPECT_DOUBLE_EQ(cc.ssthresh(), cc.cwnd());
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(ScalableTcp, CustomGainParamsAreApplied) {
  ScalableTcp::Params params;
  params.a = 0.05;
  params.b = 0.5;
  ScalableTcp cc{params};
  cc.on_congestion_event(at_ms(0));  // 10 * 0.5 = 5
  EXPECT_DOUBLE_EQ(cc.cwnd(), 5.0);
  cc.on_ack(1, kRtt, at_ms(1), false);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 5.05);
  cc.on_ecn_sample(1, true, at_ms(2));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 5.05 * 0.5);
}

TEST(ScalableTcp, MarksFloorAtMinWindow) {
  ScalableTcp cc;
  cc.on_congestion_event(at_ms(0));
  for (int i = 0; i < 100; ++i) {
    cc.on_ecn_sample(1, true, at_ms(20.0 * i));  // each outside the holdoff
  }
  EXPECT_DOUBLE_EQ(cc.cwnd(), kMinWindow);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), kMinWindow);
}

TEST(RelentlessTcp, SubtractsOneSegmentPerMark) {
  RelentlessTcp cc;
  cc.on_congestion_event(at_ms(0));  // leave slow start
  // Grow a bit first.
  for (int i = 0; i < 400; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  const double before = cc.cwnd();
  cc.on_ecn_sample(1, true, at_ms(500));
  EXPECT_NEAR(cc.cwnd(), before - 1.0, 1e-9);
  cc.on_ecn_sample(1, true, at_ms(501));
  EXPECT_NEAR(cc.cwnd(), before - 2.0, 1e-9);
}

TEST(RelentlessTcp, UnmarkedAcksDoNotReduce) {
  RelentlessTcp cc;
  cc.on_congestion_event(at_ms(0));
  const double w0 = cc.cwnd();
  for (int i = 0; i < 50; ++i) cc.on_ecn_sample(1, false, at_ms(i));
  EXPECT_GE(cc.cwnd(), w0);
}

TEST(RelentlessTcp, FloorAtMinWindow) {
  RelentlessTcp cc;
  cc.on_congestion_event(at_ms(0));
  for (int i = 0; i < 100; ++i) cc.on_ecn_sample(1, true, at_ms(i));
  EXPECT_GE(cc.cwnd(), kMinWindow);
}

TEST(Factory, MakesScalableFamily) {
  EXPECT_EQ(make_congestion_control(CcType::kScalable)->name(), "scalable");
  EXPECT_EQ(make_congestion_control(CcType::kRelentless)->name(), "relentless");
  EXPECT_TRUE(make_congestion_control(CcType::kScalable)->is_scalable());
  EXPECT_TRUE(make_congestion_control(CcType::kRelentless)->is_scalable());
}

}  // namespace
}  // namespace pi2::tcp
