#include <gtest/gtest.h>

#include <cmath>

#include "tcp/congestion_control.hpp"
#include "tcp/cubic.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/reno.hpp"

namespace pi2::tcp {
namespace {

using pi2::sim::from_millis;
using pi2::sim::Time;

constexpr pi2::sim::Duration kRtt = std::chrono::milliseconds{100};

Time at_ms(double ms) { return from_millis(ms); }

// ---------------------------------------------------------------- Reno ----

TEST(Reno, StartsAtInitialWindowInSlowStart) {
  Reno cc;
  EXPECT_DOUBLE_EQ(cc.cwnd(), kInitialWindow);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(Reno, SlowStartDoublesPerWindow) {
  Reno cc;
  // ACK a full window's worth one segment at a time.
  const auto w = static_cast<int>(cc.cwnd());
  for (int i = 0; i < w; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  EXPECT_NEAR(cc.cwnd(), 2.0 * kInitialWindow, 1e-9);
}

TEST(Reno, CongestionAvoidanceAddsOneSegmentPerRtt) {
  Reno cc;
  cc.on_congestion_event(at_ms(0));  // leave slow start
  const double w0 = cc.cwnd();
  const auto w = static_cast<int>(w0);
  for (int i = 0; i < w; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  EXPECT_NEAR(cc.cwnd(), w0 + 1.0, 0.15);
}

TEST(Reno, HalvesOnCongestion) {
  Reno cc;
  for (int i = 0; i < 100; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  const double before = cc.cwnd();
  cc.on_congestion_event(at_ms(200));
  EXPECT_NEAR(cc.cwnd(), before * 0.5, 1e-9);
}

TEST(Reno, CRenoUsesBeta07) {
  Reno cc{0.7};
  for (int i = 0; i < 100; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  const double before = cc.cwnd();
  cc.on_congestion_event(at_ms(200));
  EXPECT_NEAR(cc.cwnd(), before * 0.7, 1e-9);
}

TEST(Reno, WindowNeverBelowMinimum) {
  Reno cc;
  for (int i = 0; i < 20; ++i) cc.on_congestion_event(at_ms(i));
  EXPECT_GE(cc.cwnd(), kMinWindow);
}

TEST(Reno, TimeoutCollapsesToOneSegment) {
  Reno cc;
  for (int i = 0; i < 50; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  cc.on_timeout(at_ms(100));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(Reno, RecoverySuppressesGrowth) {
  Reno cc;
  cc.on_congestion_event(at_ms(0));
  const double w0 = cc.cwnd();
  cc.on_ack(5, kRtt, at_ms(1), /*in_recovery=*/true);
  EXPECT_DOUBLE_EQ(cc.cwnd(), w0);
}

TEST(Reno, NotEcnCapable) {
  Reno cc;
  EXPECT_EQ(cc.ect(), net::Ecn::kNotEct);
  EXPECT_FALSE(cc.is_scalable());
}

// --------------------------------------------------------------- Cubic ----

TEST(Cubic, BetaIs07OnLoss) {
  Cubic cc;
  for (int i = 0; i < 100; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  const double before = cc.cwnd();
  cc.on_congestion_event(at_ms(200));
  EXPECT_NEAR(cc.cwnd(), before * 0.7, 1e-9);
}

TEST(Cubic, GrowsTowardsWmaxAfterReduction) {
  Cubic::Params params;
  params.hystart = false;
  Cubic cc{params};
  // Build a window then drop.
  for (int i = 0; i < 200; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  cc.on_congestion_event(at_ms(300));
  const double after_drop = cc.cwnd();
  for (int i = 0; i < 2000; ++i) cc.on_ack(1, kRtt, at_ms(301 + i * 5), false);
  EXPECT_GT(cc.cwnd(), after_drop);
}

TEST(Cubic, ConcaveRegionSlowsNearWmax) {
  Cubic::Params params;
  params.hystart = false;
  params.tcp_friendliness = false;
  Cubic cc{params};
  for (int i = 0; i < 300; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  cc.on_congestion_event(at_ms(1000));
  // Track growth rate over time: it should decelerate approaching w_max.
  double t_ms = 1001.0;
  double prev = cc.cwnd();
  double first_delta = -1.0;
  for (int rtt = 0; rtt < 4; ++rtt) {
    for (int i = 0; i < static_cast<int>(cc.cwnd()); ++i) {
      cc.on_ack(1, kRtt, at_ms(t_ms), false);
      t_ms += 1.0;
    }
    const double delta = cc.cwnd() - prev;
    if (first_delta < 0) first_delta = delta;
    prev = cc.cwnd();
  }
  EXPECT_GT(first_delta, 0.0);
}

TEST(Cubic, FastConvergenceLowersWmaxOnBackToBackLosses) {
  Cubic::Params p;
  p.hystart = false;
  Cubic cc{p};
  for (int i = 0; i < 300; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  const double w1 = cc.cwnd();
  cc.on_congestion_event(at_ms(400));
  cc.on_congestion_event(at_ms(500));  // second loss below previous w_max
  // With fast convergence, the ceiling is below w1 * 0.7.
  EXPECT_LT(cc.cwnd(), w1 * 0.7);
}

TEST(Cubic, HystartExitsSlowStartOnDelayRise) {
  Cubic cc;  // hystart on by default
  // Feed ACKs with rising RTT: baseline 100 ms, then 150 ms (> +1/8).
  for (int i = 0; i < 5; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  EXPECT_TRUE(cc.in_slow_start());
  for (int i = 0; i < 5; ++i) {
    cc.on_ack(1, std::chrono::milliseconds{150}, at_ms(10 + i), false);
  }
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(Cubic, WithoutHystartSlowStartContinuesDespiteDelay) {
  Cubic::Params p;
  p.hystart = false;
  Cubic cc{p};
  for (int i = 0; i < 5; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  for (int i = 0; i < 5; ++i) {
    cc.on_ack(1, std::chrono::milliseconds{150}, at_ms(10 + i), false);
  }
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(Cubic, GrowthBoundedPerAck) {
  Cubic::Params p;
  p.hystart = false;
  Cubic cc{p};
  cc.on_congestion_event(at_ms(0));
  // Even with a huge cumulative ACK and stale epoch, growth per call is
  // bounded by acked/2 (the cnt >= 2 rule).
  const double before = cc.cwnd();
  cc.on_ack(1000, kRtt, at_ms(60000), false);
  EXPECT_LE(cc.cwnd() - before, 500.0 + 1e-9);
}

TEST(Cubic, TimeoutEntersSlowStartAtOne) {
  Cubic cc;
  for (int i = 0; i < 100; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  cc.on_timeout(at_ms(200));
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
}

TEST(EcnCubic, UsesEct0) {
  EcnCubic cc;
  EXPECT_EQ(cc.ect(), net::Ecn::kEct0);
  EXPECT_FALSE(cc.is_scalable());
  EXPECT_EQ(cc.name(), "ecn-cubic");
}

// --------------------------------------------------------------- DCTCP ----

TEST(Dctcp, UsesEct1AsScalableIdentifier) {
  Dctcp cc;
  EXPECT_EQ(cc.ect(), net::Ecn::kEct1);
  EXPECT_TRUE(cc.is_scalable());
}

TEST(Dctcp, AlphaConvergesToMarkingFraction) {
  Dctcp cc;
  // Feed a long ACK stream at a constant 25% marking fraction (the mark
  // pattern must run *across* observation windows, not reset per window).
  std::int64_t k = 0;
  for (int w = 0; w < 200; ++w) {
    const auto win = static_cast<int>(cc.cwnd());
    for (int i = 0; i < win; ++i, ++k) {
      cc.on_ecn_sample(1, k % 4 == 0, at_ms(static_cast<double>(k)));
      cc.on_ack(1, kRtt, at_ms(static_cast<double>(k)), false);
    }
  }
  EXPECT_NEAR(cc.alpha(), 0.25, 0.08);
}

TEST(Dctcp, NoMarksMeansNoReduction) {
  Dctcp cc;
  cc.on_congestion_event(at_ms(0));  // exit slow start
  const double w0 = cc.cwnd();
  for (int i = 0; i < 200; ++i) {
    cc.on_ecn_sample(1, false, at_ms(i));
    cc.on_ack(1, kRtt, at_ms(i), false);
  }
  EXPECT_GE(cc.cwnd(), w0);  // growing, never reduced
}

TEST(Dctcp, ReductionProportionalToAlpha) {
  Dctcp::Params p;
  p.alpha0 = 0.5;
  p.g = 0.0;  // freeze alpha to isolate the reduction law
  Dctcp cc{p};
  cc.on_congestion_event(at_ms(0));  // exit slow start
  const double w0 = cc.cwnd();
  // One observation window with marks -> one reduction by alpha/2 = 25%.
  const auto win = static_cast<int>(w0) + 1;
  for (int i = 0; i < win; ++i) {
    cc.on_ecn_sample(1, true, at_ms(i));
    cc.on_ack(1, kRtt, at_ms(i), true);  // recovery flag: no growth
  }
  EXPECT_NEAR(cc.cwnd(), w0 * 0.75, 0.5);
}

TEST(Dctcp, AtMostOneReductionPerWindow) {
  Dctcp::Params p;
  p.alpha0 = 1.0;
  p.g = 0.0;
  Dctcp cc{p};
  cc.on_congestion_event(at_ms(0));
  const double w0 = cc.cwnd();
  // Half a window of fully marked ACKs: no boundary crossed yet.
  const auto half = static_cast<int>(w0 / 2.0) - 1;
  for (int i = 0; i < half; ++i) {
    cc.on_ecn_sample(1, true, at_ms(i));
    cc.on_ack(1, kRtt, at_ms(i), true);
  }
  EXPECT_DOUBLE_EQ(cc.cwnd(), w0);  // not yet
}

TEST(Dctcp, FirstMarkExitsSlowStart) {
  Dctcp cc;
  EXPECT_TRUE(cc.in_slow_start());
  cc.on_ecn_sample(1, true, at_ms(0));
  cc.on_ack(1, kRtt, at_ms(0), false);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(Dctcp, LossFallsBackToHalving) {
  Dctcp cc;
  for (int i = 0; i < 100; ++i) cc.on_ack(1, kRtt, at_ms(i), false);
  const double before = cc.cwnd();
  cc.on_congestion_event(at_ms(200));
  EXPECT_NEAR(cc.cwnd(), before * 0.5, 1e-9);
}

// ------------------------------------------------------------- Factory ----

TEST(Factory, MakesEveryType) {
  EXPECT_EQ(make_congestion_control(CcType::kReno)->name(), "reno");
  EXPECT_EQ(make_congestion_control(CcType::kCubic)->name(), "cubic");
  EXPECT_EQ(make_congestion_control(CcType::kEcnCubic)->name(), "ecn-cubic");
  EXPECT_EQ(make_congestion_control(CcType::kDctcp)->name(), "dctcp");
}

TEST(Factory, NamesMatchToString) {
  for (auto t : {CcType::kReno, CcType::kCubic, CcType::kEcnCubic, CcType::kDctcp}) {
    EXPECT_EQ(make_congestion_control(t)->name(), to_string(t));
  }
}

// Scaling-exponent sanity (paper equations (1)-(3) and Appendix A).
TEST(ScalingTheory, ClassicControlsAreUnscalable) {
  // B = 1/2 (Reno/CReno) and B = 3/4 (Cubic) give c shrinking with W.
  EXPECT_LT(1.0 - 1.0 / 0.5, 0.0);
  EXPECT_LT(1.0 - 1.0 / 0.75, 0.0);
  // DCTCP: B = 1 (probabilistic) and B = 2 (step) give non-shrinking c.
  EXPECT_GE(1.0 - 1.0 / 1.0, 0.0);
  EXPECT_GE(1.0 - 1.0 / 2.0, 0.0);
}

}  // namespace
}  // namespace pi2::tcp
