#include "core/pi2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_support.hpp"

namespace pi2::core {
namespace {

using pi2::net::Ecn;
using pi2::net::QueueDiscipline;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;
using pi2::testing::signal_fraction;

class Pi2Test : public ::testing::Test {
 protected:
  void install(Pi2Aqm::Params params) {
    aqm_ = std::make_unique<Pi2Aqm>(params);
    aqm_->install(sim_, view_);
  }
  void run_updates(double delay_s, int n) {
    view_.set_delay_seconds(delay_s);
    sim_.run_until(sim_.now() + aqm_->params().t_update * n);
  }

  Simulator sim_{1};
  FakeQueueView view_;
  std::unique_ptr<Pi2Aqm> aqm_;
};

TEST_F(Pi2Test, DefaultGainsAre2Point5TimesPie) {
  Pi2Aqm::Params p;
  EXPECT_DOUBLE_EQ(p.alpha_hz, 0.125 * 2.5);
  EXPECT_DOUBLE_EQ(p.beta_hz, 1.25 * 2.5);
}

TEST_F(Pi2Test, AppliedProbabilityIsSquareOfInternal) {
  install(Pi2Aqm::Params{});
  run_updates(0.100, 20);
  const double p_prime = aqm_->scalable_probability();
  ASSERT_GT(p_prime, 0.05);
  EXPECT_DOUBLE_EQ(aqm_->classic_probability(), p_prime * p_prime);
}

TEST_F(Pi2Test, DropFrequencyMatchesSquaredProbability) {
  Pi2Aqm::Params params;
  params.ecn = false;
  install(params);
  run_updates(0.050, 30);
  const double p_prime = aqm_->scalable_probability();
  const double p = p_prime * p_prime;
  ASSERT_GT(p, 0.001);
  const double f = signal_fraction(*aqm_, Ecn::kNotEct, 100000);
  EXPECT_NEAR(f, p, 4.0 * std::sqrt(p / 100000) + 0.002);
}

TEST_F(Pi2Test, ThinkTwiceNeverSignalsMoreThanLinear) {
  // The squared decision is strictly less likely than the linear one for
  // any p' < 1: max(Y1, Y2) < p' implies Y1 < p'.
  install(Pi2Aqm::Params{});
  run_updates(0.100, 40);
  const double p_prime = aqm_->scalable_probability();
  ASSERT_GT(p_prime, 0.0);
  const double f = signal_fraction(*aqm_, Ecn::kNotEct, 50000);
  EXPECT_LT(f, p_prime);
}

TEST_F(Pi2Test, MarksClassicEcnWhenEnabled) {
  install(Pi2Aqm::Params{});
  run_updates(0.300, 100);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(aqm_->enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kDrop);
  }
}

TEST_F(Pi2Test, DropsWhenEcnDisabled) {
  Pi2Aqm::Params params;
  params.ecn = false;
  install(params);
  run_updates(0.300, 100);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(aqm_->enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kMark);
  }
}

TEST_F(Pi2Test, OverloadCapsClassicProbabilityAt25Percent) {
  install(Pi2Aqm::Params{});
  run_updates(5.0, 2000);  // gross overload
  EXPECT_NEAR(aqm_->classic_probability(), 0.25, 1e-9);
  EXPECT_NEAR(aqm_->scalable_probability(), 0.5, 1e-9);
}

TEST_F(Pi2Test, CustomOverloadCap) {
  Pi2Aqm::Params params;
  params.max_classic_prob = 0.04;
  install(params);
  run_updates(5.0, 2000);
  EXPECT_NEAR(aqm_->classic_probability(), 0.04, 1e-9);
}

TEST_F(Pi2Test, NoSignalsAtZeroQueue) {
  install(Pi2Aqm::Params{});
  run_updates(0.0, 50);
  EXPECT_DOUBLE_EQ(aqm_->classic_probability(), 0.0);
  EXPECT_EQ(signal_fraction(*aqm_, Ecn::kNotEct, 1000), 0.0);
}

TEST_F(Pi2Test, ConvergesToTargetDelayProbability) {
  // Pin the queue at exactly the target: after the transient the
  // probability must hold steady (integral error is zero).
  install(Pi2Aqm::Params{});
  run_updates(0.020, 5);
  const double p1 = aqm_->scalable_probability();
  run_updates(0.020, 5);
  EXPECT_NEAR(aqm_->scalable_probability(), p1, 1e-12);
}

TEST_F(Pi2Test, NoHeuristicsNoBurstAllowance) {
  // Unlike PIE, PI2 signals from the very first packet if p' > 0 — there is
  // no burst allowance or low-delay suppression to disable.
  install(Pi2Aqm::Params{});
  run_updates(0.500, 40);
  ASSERT_GT(aqm_->scalable_probability(), 0.3);
  EXPECT_GT(signal_fraction(*aqm_, Ecn::kNotEct, 5000), 0.0);
}

}  // namespace
}  // namespace pi2::core
