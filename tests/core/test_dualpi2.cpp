#include "core/dualpi2.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace pi2::core {
namespace {

using pi2::net::Ecn;
using pi2::net::Packet;
using pi2::sim::from_millis;
using pi2::sim::from_seconds;
using pi2::sim::Simulator;

Packet packet_with(Ecn ecn, std::int32_t flow = 0) {
  Packet p;
  p.flow = flow;
  p.ecn = ecn;
  return p;
}

TEST(DualPi2, ClassifiesByEcnCodepoint) {
  Simulator sim{1};
  DualPi2Link::Params params;
  DualPi2Link link{sim, params};
  link.send(packet_with(Ecn::kEct1));
  link.send(packet_with(Ecn::kNotEct));
  link.send(packet_with(Ecn::kEct0));
  link.send(packet_with(Ecn::kCe));
  EXPECT_EQ(link.counters().l_enqueued, 2);  // ECT(1) + CE
  EXPECT_EQ(link.counters().c_enqueued, 2);  // Not-ECT + ECT(0)
}

TEST(DualPi2, DeliversBothClasses) {
  Simulator sim{1};
  DualPi2Link link{sim, DualPi2Link::Params{}};
  int l = 0;
  int c = 0;
  link.set_departure_probe([&](const Packet&, pi2::sim::Duration, bool from_l) {
    (from_l ? l : c) += 1;
  });
  for (int i = 0; i < 10; ++i) {
    link.send(packet_with(Ecn::kEct1));
    link.send(packet_with(Ecn::kNotEct));
  }
  sim.run_until(from_seconds(5));
  EXPECT_EQ(l, 10);
  EXPECT_EQ(c, 10);
}

TEST(DualPi2, LQueueGetsPriorityUnderTimeShift) {
  Simulator sim{1};
  DualPi2Link::Params params;
  params.rate_bps = 1.2e6;  // 10 ms per packet
  DualPi2Link link{sim, params};
  std::vector<bool> order;
  link.set_departure_probe([&](const Packet&, pi2::sim::Duration, bool from_l) {
    order.push_back(from_l);
  });
  // Fill C first, then L: with a 50 ms time shift, L packets jump ahead of
  // the queued C packets.
  for (int i = 0; i < 5; ++i) link.send(packet_with(Ecn::kNotEct));
  for (int i = 0; i < 5; ++i) link.send(packet_with(Ecn::kEct1));
  sim.run_until(from_seconds(5));
  ASSERT_EQ(order.size(), 10u);
  // First departure is C (transmission already started), then L drains.
  EXPECT_FALSE(order[0]);
  for (int i = 1; i <= 5; ++i) EXPECT_TRUE(order[i]) << i;
}

TEST(DualPi2, NativeRampMarksLongSojourns) {
  Simulator sim{1};
  DualPi2Link::Params params;
  params.rate_bps = 1.2e6;  // 10 ms per packet: sojourn quickly exceeds 2 ms
  DualPi2Link link{sim, params};
  int marked = 0;
  link.set_departure_probe([&](const Packet& p, pi2::sim::Duration, bool from_l) {
    if (from_l && p.ecn == Ecn::kCe) ++marked;
  });
  for (int i = 0; i < 20; ++i) link.send(packet_with(Ecn::kEct1));
  sim.run_until(from_seconds(5));
  // Every packet past the first few has sojourn > l_min_th + l_range.
  EXPECT_GT(marked, 10);
}

TEST(DualPi2, NoMarksWhenIdleAndShallow) {
  Simulator sim{1};
  DualPi2Link::Params params;
  params.rate_bps = 100e6;  // 0.12 ms per packet: far below the ramp
  DualPi2Link link{sim, params};
  int marked = 0;
  link.set_departure_probe([&](const Packet& p, pi2::sim::Duration, bool from_l) {
    if (from_l && p.ecn == Ecn::kCe) ++marked;
  });
  for (int i = 0; i < 10; ++i) {
    link.send(packet_with(Ecn::kEct1));
    sim.run_until(sim.now() + from_millis(10));  // drain: zero queue
  }
  EXPECT_EQ(marked, 0);
}

TEST(DualPi2, SharedBufferTailDrops) {
  Simulator sim{1};
  DualPi2Link::Params params;
  params.buffer_packets = 5;
  params.rate_bps = 1e6;
  DualPi2Link link{sim, params};
  for (int i = 0; i < 20; ++i) link.send(packet_with(Ecn::kEct1));
  EXPECT_GT(link.counters().tail_dropped, 0);
}

TEST(DualPi2, QueueDelaysAreTrackedSeparately) {
  Simulator sim{1};
  DualPi2Link::Params params;
  params.rate_bps = 1.2e6;
  DualPi2Link link{sim, params};
  for (int i = 0; i < 10; ++i) link.send(packet_with(Ecn::kNotEct));
  EXPECT_GT(link.c_queue_delay(), from_millis(50));
  EXPECT_EQ(link.l_queue_delay(), from_millis(0));
}

TEST(DualPi2, CoupledProbabilityReachesLQueue) {
  // Sustain a deep C queue so the PI controller raises p'; L packets must
  // then see coupled marking k*p' even with tiny L sojourn.
  Simulator sim{1};
  DualPi2Link::Params params;
  params.rate_bps = 2e6;
  DualPi2Link link{sim, params};
  int l_marked = 0;
  int l_total = 0;
  link.set_departure_probe([&](const Packet& p, pi2::sim::Duration, bool from_l) {
    if (from_l) {
      ++l_total;
      if (p.ecn == Ecn::kCe) ++l_marked;
    }
  });
  // Keep the C queue loaded for 10 s while trickling L packets.
  std::function<void()> feed = [&] {
    for (int i = 0; i < 20; ++i) link.send(packet_with(Ecn::kNotEct));
    link.send(packet_with(Ecn::kEct1));
    if (sim.now() < from_seconds(10)) sim.after(from_millis(100), feed);
  };
  sim.after(from_millis(0), feed);
  // Sample p' while the C queue is still loaded (it rightly collapses to
  // zero once the feed stops and the queue drains).
  sim.run_until(from_seconds(9));
  const double p_prime_loaded = link.p_prime();
  sim.run_until(from_seconds(11));
  ASSERT_GT(l_total, 50);
  EXPECT_GT(p_prime_loaded, 0.0);
  EXPECT_GT(l_marked, 0);
}

}  // namespace
}  // namespace pi2::core
