#include "core/coupled_pi2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "control/window_laws.hpp"
#include "test_support.hpp"

namespace pi2::core {
namespace {

using pi2::net::Ecn;
using pi2::net::QueueDiscipline;
using pi2::sim::Simulator;
using pi2::testing::FakeQueueView;
using pi2::testing::make_data_packet;
using pi2::testing::signal_fraction;

class CoupledTest : public ::testing::Test {
 protected:
  void install(CoupledPi2Aqm::Params params) {
    aqm_ = std::make_unique<CoupledPi2Aqm>(params);
    aqm_->install(sim_, view_);
  }
  void run_updates(double delay_s, int n) {
    view_.set_delay_seconds(delay_s);
    sim_.run_until(sim_.now() + aqm_->params().t_update * n);
  }

  Simulator sim_{1};
  FakeQueueView view_;
  std::unique_ptr<CoupledPi2Aqm> aqm_;
};

TEST_F(CoupledTest, DefaultsMatchTable1) {
  CoupledPi2Aqm::Params p;
  EXPECT_DOUBLE_EQ(p.alpha_hz, 10.0 / 16.0);
  EXPECT_DOUBLE_EQ(p.beta_hz, 100.0 / 16.0);
  EXPECT_DOUBLE_EQ(p.k, 2.0);
  EXPECT_EQ(p.target, pi2::sim::from_millis(20));
}

TEST_F(CoupledTest, CouplingLawEquation14) {
  install(CoupledPi2Aqm::Params{});
  run_updates(0.100, 20);
  const double ps = aqm_->scalable_probability();
  ASSERT_GT(ps, 0.1);
  EXPECT_DOUBLE_EQ(aqm_->classic_probability(),
                   control::coupled_classic_prob(ps, 2.0));
}

TEST_F(CoupledTest, ScalableMarkedLinearly) {
  install(CoupledPi2Aqm::Params{});
  run_updates(0.060, 20);
  const double ps = aqm_->scalable_probability();
  ASSERT_GT(ps, 0.1);
  const double f = signal_fraction(*aqm_, Ecn::kEct1, 50000);
  EXPECT_NEAR(f, ps, 4.0 * std::sqrt(ps / 50000) + 0.005);
}

TEST_F(CoupledTest, ClassicSignalledWithSquaredCoupledProbability) {
  install(CoupledPi2Aqm::Params{});
  run_updates(0.060, 20);
  const double ps = aqm_->scalable_probability();
  const double pc = aqm_->classic_probability();
  ASSERT_GT(pc, 0.001);
  const double f = signal_fraction(*aqm_, Ecn::kNotEct, 100000);
  EXPECT_NEAR(f, pc, 4.0 * std::sqrt(pc / 100000) + 0.002);
  EXPECT_LT(f, ps);  // Classic always signalled less than Scalable
}

TEST_F(CoupledTest, CePacketsTakeTheScalablePath) {
  // CE (already marked upstream) classifies as Scalable per Figure 9.
  install(CoupledPi2Aqm::Params{});
  run_updates(0.200, 50);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(aqm_->enqueue(make_data_packet(Ecn::kCe)),
              QueueDiscipline::Verdict::kDrop);
  }
}

TEST_F(CoupledTest, Ect0MarkedNotDropped) {
  install(CoupledPi2Aqm::Params{});
  run_updates(0.200, 50);
  ASSERT_GT(aqm_->classic_probability(), 0.01);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(aqm_->enqueue(make_data_packet(Ecn::kEct0)),
              QueueDiscipline::Verdict::kDrop);
  }
}

TEST_F(CoupledTest, NotEctDroppedNotMarked) {
  install(CoupledPi2Aqm::Params{});
  run_updates(0.200, 50);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(aqm_->enqueue(make_data_packet(Ecn::kNotEct)),
              QueueDiscipline::Verdict::kMark);
  }
}

TEST_F(CoupledTest, OverloadCapsScalableAt100AndClassicAt25Percent) {
  install(CoupledPi2Aqm::Params{});
  run_updates(5.0, 3000);
  EXPECT_NEAR(aqm_->scalable_probability(), 1.0, 1e-9);
  EXPECT_NEAR(aqm_->classic_probability(), 0.25, 1e-9);
  // At p_s = 1 every Scalable packet is marked.
  EXPECT_DOUBLE_EQ(signal_fraction(*aqm_, Ecn::kEct1, 1000), 1.0);
}

TEST_F(CoupledTest, CouplingFactorKScalesClassicSignal) {
  CoupledPi2Aqm::Params params;
  params.k = 4.0;
  install(params);
  run_updates(0.100, 20);
  const double ps = aqm_->scalable_probability();
  EXPECT_DOUBLE_EQ(aqm_->classic_probability(), (ps / 4.0) * (ps / 4.0));
}

TEST_F(CoupledTest, DerivedCouplingFactorNear1Point19) {
  EXPECT_NEAR(control::derived_coupling_factor(), 1.19, 0.005);
}

TEST_F(CoupledTest, EqualRateWindowsAtCoupledProbabilities) {
  // The point of k: DCTCP at p_s and CReno at (p_s/k)^2 get equal windows
  // when k matches the derived value.
  const double k = control::derived_coupling_factor();
  for (double ps = 0.02; ps <= 0.4; ps *= 2.0) {
    const double pc = control::coupled_classic_prob(ps, k);
    const double w_dctcp = control::dctcp_window_probabilistic(ps);
    const double w_creno = control::creno_window(pc);
    EXPECT_NEAR(w_dctcp / w_creno, 1.0, 1e-6) << "ps=" << ps;
  }
}

}  // namespace
}  // namespace pi2::core
