// DualPI2 overload-protection edges (RFC 9332 §4.2.3), mirroring the
// single-queue saturation-edge suite in tests/aqm/test_saturation_edges.cpp:
// the p' cap under hopeless overload, the l_drop mark→drop switchover and
// its hysteresis, silence when the L queue is empty, and the t_shift
// scheduler's bounded Classic wait under a persistent L flood.
#include "core/dualpi2.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace pi2::core {
namespace {

using pi2::net::Ecn;
using pi2::net::Packet;
using pi2::sim::from_millis;
using pi2::sim::from_seconds;
using pi2::sim::Simulator;
using pi2::sim::to_millis;

Packet packet_with(Ecn ecn) {
  Packet p;
  p.ecn = ecn;
  return p;
}

TEST(DualPi2Overload, PPrimeClampsAtSqrtOfClassicCap) {
  // A 2 s Classic delay against a 20 ms target is hopeless overload: the PI
  // integrator must saturate at sqrt(max_classic_prob) — so the applied
  // Classic probability caps at the paper's 25% — without tripping a guard.
  DualPi2Core core{DualPi2Params{}};
  for (int i = 0; i < 300; ++i) core.update(2.0);
  EXPECT_DOUBLE_EQ(core.p_prime(), 0.5);  // sqrt(0.25)
  EXPECT_DOUBLE_EQ(core.p_classic(), 0.25);
  EXPECT_DOUBLE_EQ(core.p_coupled(), 1.0);  // min(k * p', 1) = min(1, 1)
  EXPECT_TRUE(core.overloaded());  // default l_drop 100: engaged exactly here
  EXPECT_EQ(core.guard_events(), 0u);
}

TEST(DualPi2Overload, PPrimeReachesOneWhenCapLifted) {
  // The overload campaign lifts max_classic_prob to 1 so drops can shed an
  // unresponsive flood; p' must then saturate at exactly 1.
  DualPi2Params params;
  params.max_classic_prob = 1.0;
  DualPi2Core core{params};
  for (int i = 0; i < 300; ++i) core.update(2.0);
  EXPECT_DOUBLE_EQ(core.p_prime(), 1.0);
  EXPECT_DOUBLE_EQ(core.p_classic(), 1.0);
  EXPECT_EQ(core.guard_events(), 0u);
}

TEST(DualPi2Overload, SwitchoverHasHysteresis) {
  // Exact-arithmetic controller (beta 0, alpha 5 Hz, target 20 ms): each
  // update moves p' by 5 * (delay - 0.02). l_drop 40 engages at coupled
  // k*p' >= 0.4 and re-arms only below 0.2; every step below keeps >= 0.1
  // margin from both boundaries so float noise cannot flip a comparison.
  DualPi2Params params;
  params.alpha_hz = 5.0;
  params.beta_hz = 0.0;
  params.max_classic_prob = 1.0;
  params.l_drop_percent = 40.0;
  DualPi2Core core{params};

  core.update(0.05);  // p' = 0.15, coupled 0.3: below engage
  EXPECT_FALSE(core.overloaded());
  core.update(0.04);  // p' = 0.25, coupled 0.5: engages
  EXPECT_TRUE(core.overloaded());
  core.update(0.0);  // p' = 0.15, coupled 0.3: below engage, above re-arm
  EXPECT_TRUE(core.overloaded()) << "must not chatter just below the threshold";
  core.update(0.0);  // p' = 0.05, coupled 0.1: below re-arm (half of engage)
  EXPECT_FALSE(core.overloaded());
  core.update(0.04);  // p' = 0.15, coupled 0.3: mid-band does not re-engage
  EXPECT_FALSE(core.overloaded());
  core.update(0.04);  // p' = 0.25, coupled 0.5: engages again
  EXPECT_TRUE(core.overloaded());
  EXPECT_EQ(core.guard_events(), 0u);
}

TEST(DualPi2Overload, LDropZeroForcesDropMode) {
  // sch_pi2 semantics: l_drop 0 disables ECN entirely — the queue is in
  // drop mode from the first update, even with no congestion.
  DualPi2Params params;
  params.l_drop_percent = 0.0;
  DualPi2Core core{params};
  core.update(0.0);
  EXPECT_TRUE(core.overloaded());
}

TEST(DualPi2Overload, OverloadTurnsMarksIntoDrops) {
  // Saturate p' at 1 (cap lifted) with l_drop at 50: both roll comparisons
  // against p' = 1 always succeed, so the signalling is deterministic —
  // ECN-capable Classic packets drop instead of marking, and the L queue
  // drops instead of marking.
  DualPi2Params params;
  params.max_classic_prob = 1.0;
  params.l_drop_percent = 50.0;
  DualPi2Core core{params};
  for (int i = 0; i < 300; ++i) core.update(2.0);
  ASSERT_TRUE(core.overloaded());
  ASSERT_DOUBLE_EQ(core.p_prime(), 1.0);

  Simulator sim{1};
  auto rng = sim.rng().split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(core.classic_signal(rng, /*ecn_capable=*/true),
              DualPi2Core::Signal::kDrop);
    EXPECT_EQ(core.l_signal(rng, /*sojourn_s=*/0.0, /*l_backlog_packets=*/1),
              DualPi2Core::Signal::kDrop);
  }
  EXPECT_EQ(core.guard_events(), 0u);
}

TEST(DualPi2Overload, EmptyLQueueStaysSilent) {
  // With nothing queued the controller must stay at zero and never signal:
  // no marks, no drops, no guard trips, no overload engagement.
  DualPi2Core core{DualPi2Params{}};
  for (int i = 0; i < 100; ++i) core.update(0.0);
  EXPECT_DOUBLE_EQ(core.p_prime(), 0.0);
  EXPECT_FALSE(core.overloaded());

  Simulator sim{1};
  auto rng = sim.rng().split();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(core.classic_signal(rng, true), DualPi2Core::Signal::kNone);
    EXPECT_EQ(core.l_signal(rng, 0.0, 0), DualPi2Core::Signal::kNone);
  }
  EXPECT_EQ(core.guard_events(), 0u);
}

TEST(DualPi2Overload, LThreshSaturatesNativeRamp) {
  // The packet-count backstop: at l_thresh packets of L backlog the native
  // probability is 1 regardless of sojourn; below it the sojourn ramp rules.
  DualPi2Params params;
  DualPi2Core core{params};
  EXPECT_DOUBLE_EQ(core.l_native(0.0, params.l_thresh_packets), 1.0);
  EXPECT_DOUBLE_EQ(core.l_native(0.0, params.l_thresh_packets - 1), 0.0);
  // l_thresh 0 disables the backstop entirely.
  DualPi2Params no_thresh;
  no_thresh.l_thresh_packets = 0;
  DualPi2Core plain{no_thresh};
  EXPECT_DOUBLE_EQ(plain.l_native(0.0, 1 << 20), 0.0);
  EXPECT_EQ(core.guard_events(), 0u);
  EXPECT_EQ(plain.guard_events(), 0u);
}

TEST(DualPi2Overload, TShiftBoundsClassicWaitUnderLFlood) {
  // A persistent L flood must not starve the C queue: a C head packet waits
  // at most t_shift plus one L service beyond the L head's sojourn. At
  // 1.2 Mb/s (10 ms per packet) with the default 30 ms shift, a C packet
  // queued behind a continuous L feed departs around t = 50 ms.
  Simulator sim{1};
  DualPi2Link::Params params;
  params.rate_bps = 1.2e6;
  DualPi2Link link{sim, params};
  std::vector<double> c_departures_ms;
  int l_departures = 0;
  link.set_departure_probe([&](const Packet&, pi2::sim::Duration, bool from_l) {
    if (from_l) {
      ++l_departures;
    } else {
      c_departures_ms.push_back(to_millis(sim.now()));
    }
  });
  link.send(packet_with(Ecn::kEct1));   // transmission starts immediately
  link.send(packet_with(Ecn::kNotEct));  // the C packet under test
  // Feed L slightly faster than the service rate so its queue never empties.
  std::function<void()> feed = [&] {
    link.send(packet_with(Ecn::kEct1));
    if (sim.now() < from_millis(200)) sim.after(from_millis(9), feed);
  };
  sim.after(from_millis(9), feed);
  sim.run_until(from_millis(250));

  ASSERT_EQ(c_departures_ms.size(), 1u);
  // Served no earlier than its t_shift handicap, no later than the bound
  // (t_shift + in-flight L packet + a fresh L head + its own transmission).
  EXPECT_GE(c_departures_ms[0], to_millis(params.t_shift));
  EXPECT_LE(c_departures_ms[0], to_millis(params.t_shift) + 3 * 10.0);
  EXPECT_GT(l_departures, 10);  // the flood kept flowing around it
  EXPECT_EQ(link.guard_events(), 0u);
}

}  // namespace
}  // namespace pi2::core
